// The (M+1) x N score matrix and its planning state (section III-A/III-B).
//
// ScoreModel snapshots the datacenter at the start of a scheduling round
// and evaluates Score(h, vm) — the summed penalties of *planning* VM `vm`
// on host `h`, given where every other VM is currently planned. The plan
// starts as the real assignment (queued VMs on the virtual host, row M) and
// is mutated by the hill-climbing solver; host bookkeeping (reserved CPU /
// memory, VM counts, running demand) tracks the plan so each score reflects
// the hypothetical final configuration, while the one-off move costs
// (Pvirt) are always charged from the VM's *original* location.
//
// Incremental evaluation. Score(h, vm) splits into a plan-independent part
// — Preq compatibility, Pvirt (charged from the original location), Pconc
// (the snapshot's in-flight operations) and Pfault — computed once per
// (host, vm) pair at snapshot time, and a plan-dependent part (Pres, Ppwr,
// PSLA) evaluated against the current plan. Evaluated cells are cached.
//
// Cache-invalidation contract: move(r, c) dirties exactly the rows the
// column left and entered — those rows' occupation, VM count and running
// demand changed for *every* column — and nothing else. The moved column's
// cells on untouched rows are unchanged (its static terms are charged from
// its original location, which never moves), and the virtual row is
// constantly kInfScore. tests/test_score_cache.cpp holds this contract to
// zero-tolerance equality against fresh recomputation.
#pragma once

#include <vector>

#include "core/score.hpp"
#include "datacenter/datacenter.hpp"
#include "datacenter/ids.hpp"
#include "obs/profiler.hpp"

namespace easched::core {

class SolverPool;

/// Score(h, vm) split into its per-penalty terms. For a finite cell the
/// left-to-right sum req+res+virt+conc+pwr+sla+fault equals `total` exactly
/// (same accumulation order as the evaluation); an incompatible or
/// over-occupied cell short-circuits with req / res at kInfScore and
/// total == kInfScore. Terms whose use_* switch is off are 0.
struct ScoreBreakdown {
  double req = 0;
  double res = 0;
  double virt = 0;
  double conc = 0;
  double pwr = 0;
  double sla = 0;
  double fault = 0;
  double total = 0;
};

class ScoreModel {
 public:
  /// Snapshots `dc`. Columns are built from the queued VMs plus — when
  /// `migration_enabled` — every running VM (they are then movable).
  /// Running VMs with an operation in flight are pinned wherever they are
  /// (the paper gives them infinite scores; we simply exclude them as
  /// columns, which is equivalent and cheaper). Rows are the powered-on
  /// hosts plus the virtual host as the last row.
  ///
  /// `pool` (optional, not owned) parallelizes the plan-independent term
  /// build and prime() over row ranges; results are bit-identical to the
  /// serial build.
  ScoreModel(const datacenter::Datacenter& dc,
             const std::vector<datacenter::VmId>& queued,
             const ScoreParams& params, bool migration_enabled,
             SolverPool* pool = nullptr);

  [[nodiscard]] int rows() const;  ///< hosts + 1 (virtual host, last row)
  [[nodiscard]] int cols() const;
  [[nodiscard]] int virtual_row() const { return rows() - 1; }

  /// Score(h, vm) for the current plan. The virtual row is kInfScore.
  /// Cached: repeated calls between moves are O(1); a move re-evaluates
  /// only cells of the two touched rows on their next read.
  [[nodiscard]] double cell(int r, int c) const;

  /// Recomputes Score(r, c) from the bookkeeping, bypassing (and not
  /// updating) the cache. Same arithmetic as cell(); exposed so the
  /// property tests can assert cache/fresh equality at zero tolerance.
  [[nodiscard]] double recompute_cell(int r, int c) const;

  /// Per-penalty decomposition of Score(r, c) under the current plan —
  /// the score-attribution payload of kDecision trace events. Mirrors
  /// score_cell() term for term; breakdown(r, c).total == cell(r, c)
  /// exactly (the obs tests hold this).
  [[nodiscard]] ScoreBreakdown breakdown(int r, int c) const;

  /// Attaches a phase profiler (not owned; may be null) so move()'s
  /// dirty-row invalidations are timed under Phase::kInvalidate.
  void set_profiler(obs::PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

  /// Evaluates every cell into the cache, partitioned by rows over the
  /// pool when one was supplied (the "initial matrix build" sweep). A
  /// serial call is equivalent; lazy per-cell fills are too.
  void prime();

  /// Row where column `c` is currently planned.
  [[nodiscard]] int plan_row(int c) const;
  /// Row where column `c` started (virtual row for queued VMs).
  [[nodiscard]] int original_row(int c) const;
  /// Whether the solver may move column `c` (queued VMs always; running
  /// VMs only when migration is enabled).
  [[nodiscard]] bool movable(int c) const;

  /// Applies a plan move of column `c` to row `r` and returns the dirty
  /// region: every cell of column `c`, plus every cell of the rows the VM
  /// left and entered (their occupation changed for all other columns).
  /// Moving to the virtual row (allowed only for undo by the exhaustive
  /// reference solver) releases the column's reservations. Invalidates the
  /// cached cells of the dirty rows.
  struct Dirty {
    int col = -1;
    int row_a = -1;  ///< previous row (-1 if it was the virtual row)
    int row_b = -1;  ///< new row (-1 if the virtual row)
  };
  Dirty move(int r, int c);

  /// Mapping back to datacenter ids.
  [[nodiscard]] datacenter::VmId vm_at(int c) const;
  [[nodiscard]] datacenter::HostId host_at(int r) const;

  /// Aggregated row score (used to rank idle hosts for power-off,
  /// section III-C): sum of the finite scores plus kInfScore-weighted count
  /// of infinite ones, folded into one comparable number.
  [[nodiscard]] double row_aggregate(int r) const;

  /// Compares every *warmed* cached cell against a fresh recomputation and
  /// returns how many diverge; the coordinates of the first divergence land
  /// in `first_r`/`first_c` (optional). Cold cells are skipped — only
  /// memoized values can be stale — so the scan costs one recompute per
  /// warm cell and nothing touches the cache. This is the kScoreCache
  /// invariant rule (validate/invariant_checker.hpp).
  [[nodiscard]] int count_cache_divergences(int* first_r = nullptr,
                                            int* first_c = nullptr) const;

  /// Test hook for the validator's mutation tests: forces cell (r, c) into
  /// the cache and then perturbs the cached value by `delta`, simulating a
  /// missed invalidation. Requires a real row and a valid column.
  void debug_corrupt_cache(int r, int c, double delta);

 private:
  struct HostRow {
    datacenter::HostId id = 0;
    double cpu_cap = 0, mem_cap = 0;
    double cpu_res = 0, mem_res = 0;  ///< planned reservations
    int vm_count = 0;                 ///< planned resident count
    double running_demand = 0;        ///< planned guest CPU demand
    double mgmt_demand = 0;
    double conc_remaining_s = 0;      ///< Σ remaining op time (Pconc)
    double creation_cost = 0, migration_cost = 0;
    double reliability = 1;
    workload::Arch arch{};
    std::uint32_t software = 0;
  };
  struct VmCol {
    datacenter::VmId id = 0;
    double cpu = 0, mem = 0;
    bool is_new = false;
    bool can_move = false;
    int original = -1;  ///< row index; virtual row for queued
    int planned = -1;
    double elapsed_s = 0;        ///< now - submit
    double remaining_user_s = 0; ///< Tr = Tu - elapsed (may be < 0)
    double remaining_work_s = 0; ///< actual work left (SLA projection)
    double deadline_s = 0;
    double fault_tolerance = 0;
    workload::Arch arch{};
    std::uint32_t software = 0;
  };
  /// Plan-independent penalty terms of one (host, vm) pair, fixed at
  /// snapshot time: Preq compatibility, Pvirt (incl. the Pm migration
  /// term), Pconc and Pfault. The plan-dependent remainder (Pres, Ppwr,
  /// PSLA) is evaluated by score_cell().
  struct StaticTerms {
    double virt = 0;
    double conc = 0;
    double fault = 0;
    bool compat = false;
  };

  [[nodiscard]] std::size_t at(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(vms_.size()) +
           static_cast<std::size_t>(c);
  }
  void build_static_terms(SolverPool* pool);
  void build_static_row(int r);
  [[nodiscard]] double score_cell(int r, int c) const;
  void invalidate_row(int r);

  ScoreParams params_;
  obs::PhaseProfiler* profiler_ = nullptr;  ///< not owned; may be null
  std::vector<HostRow> hosts_;
  std::vector<VmCol> vms_;
  std::vector<StaticTerms> static_terms_;   ///< (rows-1) x cols
  SolverPool* pool_ = nullptr;              ///< not owned; may be null
  // Per-cell score cache over the real rows. `mutable`: cell() is a const
  // query that memoizes. Threaded sweeps stay race-free because workers
  // only touch disjoint row (build) or column (argmin) ranges.
  mutable std::vector<double> cache_;
  mutable std::vector<unsigned char> cache_ok_;
};

}  // namespace easched::core
