// The (M+1) x N score matrix and its planning state (section III-A/III-B).
//
// ScoreModel snapshots the datacenter at the start of a scheduling round
// and evaluates Score(h, vm) — the summed penalties of *planning* VM `vm`
// on host `h`, given where every other VM is currently planned. The plan
// starts as the real assignment (queued VMs on the virtual host, row M) and
// is mutated by the hill-climbing solver; host bookkeeping (reserved CPU /
// memory, VM counts, running demand) tracks the plan so each score reflects
// the hypothetical final configuration, while the one-off move costs
// (Pvirt) are always charged from the VM's *original* location.
#pragma once

#include <vector>

#include "core/score.hpp"
#include "datacenter/datacenter.hpp"
#include "datacenter/ids.hpp"

namespace easched::core {

class ScoreModel {
 public:
  /// Snapshots `dc`. Columns are built from the queued VMs plus — when
  /// `migration_enabled` — every running VM (they are then movable).
  /// Running VMs with an operation in flight are pinned wherever they are
  /// (the paper gives them infinite scores; we simply exclude them as
  /// columns, which is equivalent and cheaper). Rows are the powered-on
  /// hosts plus the virtual host as the last row.
  ScoreModel(const datacenter::Datacenter& dc,
             const std::vector<datacenter::VmId>& queued,
             const ScoreParams& params, bool migration_enabled);

  [[nodiscard]] int rows() const;  ///< hosts + 1 (virtual host, last row)
  [[nodiscard]] int cols() const;
  [[nodiscard]] int virtual_row() const { return rows() - 1; }

  /// Score(h, vm) for the current plan. The virtual row is kInfScore.
  [[nodiscard]] double cell(int r, int c) const;

  /// Row where column `c` is currently planned.
  [[nodiscard]] int plan_row(int c) const;
  /// Row where column `c` started (virtual row for queued VMs).
  [[nodiscard]] int original_row(int c) const;
  /// Whether the solver may move column `c` (queued VMs always; running
  /// VMs only when migration is enabled).
  [[nodiscard]] bool movable(int c) const;

  /// Applies a plan move of column `c` to row `r` and returns the dirty
  /// region: every cell of column `c`, plus every cell of the rows the VM
  /// left and entered (their occupation changed for all other columns).
  /// Moving to the virtual row (allowed only for undo by the exhaustive
  /// reference solver) releases the column's reservations.
  struct Dirty {
    int col = -1;
    int row_a = -1;  ///< previous row (-1 if it was the virtual row)
    int row_b = -1;  ///< new row (-1 if the virtual row)
  };
  Dirty move(int r, int c);

  /// Mapping back to datacenter ids.
  [[nodiscard]] datacenter::VmId vm_at(int c) const;
  [[nodiscard]] datacenter::HostId host_at(int r) const;

  /// Aggregated row score (used to rank idle hosts for power-off,
  /// section III-C): sum of the finite scores plus kInfScore-weighted count
  /// of infinite ones, folded into one comparable number.
  [[nodiscard]] double row_aggregate(int r) const;

 private:
  struct HostRow {
    datacenter::HostId id = 0;
    double cpu_cap = 0, mem_cap = 0;
    double cpu_res = 0, mem_res = 0;  ///< planned reservations
    int vm_count = 0;                 ///< planned resident count
    double running_demand = 0;        ///< planned guest CPU demand
    double mgmt_demand = 0;
    double conc_remaining_s = 0;      ///< Σ remaining op time (Pconc)
    double creation_cost = 0, migration_cost = 0;
    double reliability = 1;
    workload::Arch arch{};
    std::uint32_t software = 0;
  };
  struct VmCol {
    datacenter::VmId id = 0;
    double cpu = 0, mem = 0;
    bool is_new = false;
    bool can_move = false;
    int original = -1;  ///< row index; virtual row for queued
    int planned = -1;
    double elapsed_s = 0;        ///< now - submit
    double remaining_user_s = 0; ///< Tr = Tu - elapsed (may be < 0)
    double remaining_work_s = 0; ///< actual work left (SLA projection)
    double deadline_s = 0;
    double fault_tolerance = 0;
    workload::Arch arch{};
    std::uint32_t software = 0;
  };

  [[nodiscard]] double score_cell(const HostRow& h, const VmCol& v) const;

  ScoreParams params_;
  std::vector<HostRow> hosts_;
  std::vector<VmCol> vms_;
};

}  // namespace easched::core
