// The (M+1) x N score matrix and its planning state (section III-A/III-B).
//
// ScoreModel snapshots the datacenter at the start of a scheduling round
// and evaluates Score(h, vm) — the summed penalties of *planning* VM `vm`
// on host `h`, given where every other VM is currently planned. The plan
// starts as the real assignment (queued VMs on the virtual host, row M) and
// is mutated by the hill-climbing solver; host bookkeeping (reserved CPU /
// memory, VM counts, running demand) tracks the plan so each score reflects
// the hypothetical final configuration, while the one-off move costs
// (Pvirt) are always charged from the VM's *original* location.
//
// Incremental evaluation. Score(h, vm) splits into a plan-independent part
// — Preq compatibility, Pvirt (charged from the original location), Pconc
// (the snapshot's in-flight operations) and Pfault — computed once per
// (host, vm) pair, and a plan-dependent part (Pres, Ppwr, PSLA) evaluated
// against the current plan. Evaluated cells are cached.
//
// Cache-invalidation contract: move(r, c) dirties exactly the rows the
// column left and entered — those rows' occupation, VM count and running
// demand changed for *every* column — and nothing else. The moved column's
// cells on untouched rows are unchanged (its static terms are charged from
// its original location, which never moves), and the virtual row is
// constantly kInfScore. tests/test_score_cache.cpp holds this contract to
// zero-tolerance equality against fresh recomputation.
//
// Two row layouts share one evaluation path:
//
//   Legacy (full-rebuild) mode — the original constructor. Rows are the
//   *placeable* hosts, compacted; every per-host attribute is re-read from
//   the Datacenter and copied into an owned backing store. Used by the
//   annealing solver, choose_power_off's ranking matrix, and as the
//   reference side of the incremental differential tests.
//
//   Fleet (incremental) mode — the FleetState constructor. Rows are ALL
//   hosts, row index == HostId; the immutable attribute arrays alias the
//   cross-round FleetSnapshot (zero copies), only the four plan-tracked
//   arrays are copied per round, and the plan-independent terms are built
//   lazily per cell. Non-placeable hosts keep a row whose cells are
//   constantly kInfScore (placeability is folded into the Preq
//   compatibility bit), so relative order of the placeable rows — and
//   therefore every argmin decision — matches the legacy layout exactly.
//   Fleet mode additionally maintains plan-tracked free-capacity margins
//   (seeded from the HostBucketIndex) that let the solver skip provably
//   infeasible cells and whole kArgminBlock row blocks, and it carries
//   queued VMs' evaluated score columns across rounds through FleetColCache
//   (only when their scores are round-time-independent, i.e. !use_sla;
//   see provably_inf()/skip_block()/cell() below).
#pragma once

#include <vector>

#include "core/fleet.hpp"
#include "core/score.hpp"
#include "datacenter/datacenter.hpp"
#include "datacenter/ids.hpp"
#include "obs/profiler.hpp"

namespace easched::core {

class SolverPool;

/// Score(h, vm) split into its per-penalty terms. For a finite cell the
/// left-to-right sum req+res+virt+conc+pwr+sla+fault equals `total` exactly
/// (same accumulation order as the evaluation); an incompatible or
/// over-occupied cell short-circuits with req / res at kInfScore and
/// total == kInfScore. Terms whose use_* switch is off are 0.
struct ScoreBreakdown {
  double req = 0;
  double res = 0;
  double virt = 0;
  double conc = 0;
  double pwr = 0;
  double sla = 0;
  double fault = 0;
  double total = 0;
};

class ScoreModel {
 public:
  /// Legacy full-rebuild snapshot of `dc`. Columns are built from the
  /// queued VMs plus — when `migration_enabled` — every running VM (they
  /// are then movable). Running VMs with an operation in flight are pinned
  /// wherever they are (the paper gives them infinite scores; we simply
  /// exclude them as columns, which is equivalent and cheaper). Rows are
  /// the powered-on hosts plus the virtual host as the last row.
  ///
  /// `pool` (optional, not owned) parallelizes the plan-independent term
  /// build and prime() over row ranges; results are bit-identical to the
  /// serial build.
  ScoreModel(const datacenter::Datacenter& dc,
             const std::vector<datacenter::VmId>& queued,
             const ScoreParams& params, bool migration_enabled,
             SolverPool* pool = nullptr);

  /// Fleet-mode constructor: borrows `fleet` (already refresh()ed for this
  /// round against `dc`) instead of re-reading the Datacenter. The model
  /// must not outlive the round — it aliases the snapshot's arrays and
  /// writes evaluated queued-VM cells through into the fleet's persistent
  /// columns. Decisions (move traces, emitted actions) are identical to
  /// the legacy constructor's; only row indexing differs (HostId-direct
  /// instead of compacted), which host_at() hides.
  ScoreModel(FleetState& fleet, const datacenter::Datacenter& dc,
             const std::vector<datacenter::VmId>& queued,
             const ScoreParams& params, bool migration_enabled,
             SolverPool* pool = nullptr);

  ScoreModel(const ScoreModel&) = delete;
  ScoreModel& operator=(const ScoreModel&) = delete;

  /// Fleet mode returns the big per-round buffers (cache, static terms,
  /// plan vectors, margins) to the FleetState's ModelScratch so the next
  /// round reuses their capacity instead of re-allocating. Legacy mode
  /// does nothing.
  ~ScoreModel();

  [[nodiscard]] int rows() const;  ///< hosts + 1 (virtual host, last row)
  [[nodiscard]] int cols() const;
  [[nodiscard]] int virtual_row() const { return rows() - 1; }
  [[nodiscard]] bool fleet_mode() const { return fleet_mode_; }

  /// Score(h, vm) for the current plan. The virtual row is kInfScore.
  /// Cached: repeated calls between moves are O(1); a move re-evaluates
  /// only cells of the two touched rows on their next read. In fleet mode
  /// a queued VM's cells additionally read from / write through to its
  /// persistent cross-round column while the row's plan is untouched.
  [[nodiscard]] double cell(int r, int c) const;

  /// Recomputes Score(r, c) from the bookkeeping, bypassing (and not
  /// updating) the cache. Same arithmetic as cell(); exposed so the
  /// property tests can assert cache/fresh equality at zero tolerance.
  [[nodiscard]] double recompute_cell(int r, int c) const;

  /// Per-penalty decomposition of Score(r, c) under the current plan —
  /// the score-attribution payload of kDecision trace events. Mirrors
  /// score_cell() term for term; breakdown(r, c).total == cell(r, c)
  /// exactly (the obs tests hold this).
  [[nodiscard]] ScoreBreakdown breakdown(int r, int c) const;

  /// Attaches a phase profiler (not owned; may be null) so move()'s
  /// dirty-row invalidations are timed under Phase::kInvalidate.
  void set_profiler(obs::PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

  /// Evaluates every cell into the cache, partitioned by rows over the
  /// pool when one was supplied (the "initial matrix build" sweep). A
  /// serial call is equivalent; lazy per-cell fills are too. Fleet mode
  /// makes this a no-op: eagerly sweeping all M x N cells is exactly the
  /// cost the incremental path exists to avoid, and the solver's blocked
  /// argmin warms what it reads.
  void prime();

  /// Row where column `c` is currently planned.
  [[nodiscard]] int plan_row(int c) const;
  /// Row where column `c` started (virtual row for queued VMs).
  [[nodiscard]] int original_row(int c) const;
  /// Whether the solver may move column `c` (queued VMs always; running
  /// VMs only when migration is enabled).
  [[nodiscard]] bool movable(int c) const;

  /// Conservative infeasibility test for cell (r, c), O(1), no evaluation:
  /// true only when Score(r, c) is *provably* kInfScore under the current
  /// plan — incompatible hardware/software, a non-placeable row, or a VM
  /// demand exceeding the row's conservatively-widened free margin (see
  /// kFleetOverMargin). Never true for the column's planned row. Always
  /// false in legacy mode (the reference path stays spec-simple). The
  /// solver may skip a provably-inf cell: its delta against any keep score
  /// is >= 0, so it can never be selected by the argmin.
  [[nodiscard]] bool provably_inf(int r, int c) const;

  /// Block-level variant: true when *every* host row of kArgminBlock block
  /// `blk` is provably infeasible for column `c` (the block's maximum free
  /// margin cannot fit the VM). The solver then skips the whole block.
  /// False in legacy mode and for any block index outside the real-host
  /// range (the virtual row's tail block is never skippable).
  [[nodiscard]] bool skip_block(int c, int blk) const;

  /// Applies a plan move of column `c` to row `r` and returns the dirty
  /// region: every cell of column `c`, plus every cell of the rows the VM
  /// left and entered (their occupation changed for all other columns).
  /// Moving to the virtual row (allowed only for undo by the exhaustive
  /// reference solver) releases the column's reservations. Invalidates the
  /// cached cells of the dirty rows; in fleet mode also updates the
  /// touched rows' pruning margins and marks them plan-touched (their
  /// cells stop flowing through the persistent columns).
  struct Dirty {
    int col = -1;
    int row_a = -1;  ///< previous row (-1 if it was the virtual row)
    int row_b = -1;  ///< new row (-1 if the virtual row)
  };
  Dirty move(int r, int c);

  /// Mapping back to datacenter ids.
  [[nodiscard]] datacenter::VmId vm_at(int c) const;
  [[nodiscard]] datacenter::HostId host_at(int r) const;

  /// Aggregated row score (used to rank idle hosts for power-off,
  /// section III-C): sum of the finite scores plus kInfScore-weighted count
  /// of infinite ones, folded into one comparable number.
  [[nodiscard]] double row_aggregate(int r) const;

  /// Compares every *warmed* cached cell against a fresh recomputation and
  /// returns how many diverge; the coordinates of the first divergence land
  /// in `first_r`/`first_c` (optional). Cold cells are skipped — only
  /// memoized values can be stale — so the scan costs one recompute per
  /// warm cell and nothing touches the cache. This is the kScoreCache
  /// invariant rule (validate/invariant_checker.hpp). In fleet mode it
  /// also covers the persistent columns: a stale persisted value is loaded
  /// into the cache on first read and then diverges from the fresh
  /// recomputation like any other corruption.
  [[nodiscard]] int count_cache_divergences(int* first_r = nullptr,
                                            int* first_c = nullptr) const;

  /// Test hook for the validator's mutation tests: forces cell (r, c) into
  /// the cache and then perturbs the cached value by `delta`, simulating a
  /// missed invalidation. Requires a real row and a valid column.
  void debug_corrupt_cache(int r, int c, double delta);

 private:
  struct VmCol {
    datacenter::VmId id = 0;
    double cpu = 0, mem = 0;
    bool is_new = false;
    bool can_move = false;
    int original = -1;  ///< row index; virtual row for queued
    int planned = -1;
    double elapsed_s = 0;        ///< now - submit
    double remaining_user_s = 0; ///< Tr = Tu - elapsed (may be < 0)
    double remaining_work_s = 0; ///< actual work left (SLA projection)
    double deadline_s = 0;
    double fault_tolerance = 0;
    workload::Arch arch{};
    std::uint32_t software = 0;
    /// Cross-round persistent column (fleet mode, queued VMs whose score
    /// is round-time-independent); null otherwise. Not owned — lives in
    /// the FleetState, node-stable for the model's lifetime.
    FleetColCache* persist = nullptr;
  };
  /// Plan-independent penalty terms of one (host, vm) pair, fixed at
  /// snapshot time: Preq compatibility (placeability folded in), Pvirt
  /// (incl. the Pm migration term), Pconc and Pfault. The plan-dependent
  /// remainder (Pres, Ppwr, PSLA) is evaluated by score_cell(). Shared
  /// with fleet.hpp's ModelScratch so the backing array can be recycled
  /// across rounds.
  using StaticTerms = CellStaticTerms;
  /// Legacy mode's owned backing store for the immutable row attributes
  /// (fleet mode aliases the FleetSnapshot instead). `placeable` is all-1:
  /// legacy rows are the placeable hosts by construction.
  struct OwnRows {
    std::vector<datacenter::HostId> id;
    std::vector<unsigned char> placeable;
    std::vector<double> cpu_cap, mem_cap;
    std::vector<double> mgmt, conc;
    std::vector<double> creation, migration, reliability;
    std::vector<workload::Arch> arch;
    std::vector<std::uint32_t> software;
  };

  [[nodiscard]] std::size_t at(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(vms_.size()) +
           static_cast<std::size_t>(c);
  }
  static void fill_column_common(VmCol& c, const datacenter::Vm& vm,
                                 bool is_new, sim::SimTime now);
  void bind_own_rows();
  void build_static_terms(SolverPool* pool);
  void build_static_cell(int r, int c) const;
  [[nodiscard]] const StaticTerms& ensure_static(int r, int c) const {
    const std::size_t i = at(r, c);
    if (!static_ok_[i]) {
      build_static_cell(r, c);
      static_ok_[i] = 1;
    }
    return static_terms_[i];
  }
  [[nodiscard]] double score_cell(int r, int c) const;
  void invalidate_row(int r);
  void touch_row(int r);          ///< fleet mode: margins + plan_touched
  void rebuild_margin_block(int blk);

  ScoreParams params_;
  obs::PhaseProfiler* profiler_ = nullptr;  ///< not owned; may be null
  SolverPool* pool_ = nullptr;              ///< not owned; may be null
  FleetState* fleet_scratch_home_ = nullptr;  ///< buffer return target
  bool fleet_mode_ = false;
  int nrows_ = 0;  ///< real host rows (excl. the virtual row)

  // Immutable per-row attributes, SoA. Raw aliases: into own_ (legacy) or
  // into the borrowed FleetSnapshot (fleet mode, zero copies). Bound once
  // in the constructor after the backing storage is final.
  const unsigned char* placeable_ = nullptr;
  const double* cap_cpu_ = nullptr;
  const double* cap_mem_ = nullptr;
  const double* mgmt_ = nullptr;
  const double* conc_ = nullptr;
  const double* cost_create_ = nullptr;
  const double* cost_migrate_ = nullptr;
  const double* reliability_ = nullptr;
  const workload::Arch* arch_ = nullptr;
  const std::uint32_t* software_ = nullptr;

  // Plan-tracked per-row state, owned and mutated by move().
  std::vector<double> cpu_res_, mem_res_, running_;
  std::vector<int> vm_count_;

  // Fleet mode only: plan-tracked pruning margins (seeded from the
  // HostBucketIndex, maintained by move()) and the plan-touched rows
  // (their cells no longer flow through the persistent columns).
  std::vector<double> free_cpu_, free_mem_;
  std::vector<double> block_free_cpu_, block_free_mem_;
  std::vector<unsigned char> plan_touched_;

  OwnRows own_;
  std::vector<VmCol> vms_;
  // Plan-independent terms, built eagerly (legacy) or lazily per cell
  // (fleet mode — most cells of a pruned matrix are never read).
  // `mutable`: ensure_static() memoizes from const queries. Race-free for
  // the same reason the score cache is: threaded sweeps only touch
  // disjoint row (build) or column (argmin) ranges.
  mutable std::vector<StaticTerms> static_terms_;
  mutable std::vector<unsigned char> static_ok_;
  // Per-cell score cache over the real rows. `mutable`: cell() is a const
  // query that memoizes.
  mutable std::vector<double> cache_;
  mutable std::vector<unsigned char> cache_ok_;
};

}  // namespace easched::core
