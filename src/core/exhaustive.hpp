// Exhaustive reference solver for the allocation matrix.
//
// Section III-B justifies hill climbing as "much faster and cheaper than
// evaluating all possible configurations". This solver *does* evaluate all
// possible configurations — every assignment of the movable columns to the
// rows (queued columns may also stay on the virtual host) — and returns
// the plan with the lowest total cost, where total cost is the sum of
// Score(plan(vm), vm) evaluated under the final plan state (the virtual
// row contributes its kInfScore queue penalty).
//
// Complexity is O((M+1)^N); it exists to validate the greedy solver's
// solution quality on small instances (tests and the solver-quality
// ablation bench), never for production scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/score.hpp"

namespace easched::core {

struct ExhaustiveResult {
  std::vector<int> best_plan;   ///< row per column
  double best_cost = 0;         ///< total cost of best_plan
  std::uint64_t evaluated = 0;  ///< number of complete plans scored
};

/// Exhaustively optimizes `model` (same concept as hill_climb, plus
/// support for moving a queued column back to the virtual row). The model
/// is left in its best plan. `max_plans` caps the search as a safety net:
/// the search returns the best plan found so far when exceeded.
template <typename Model>
ExhaustiveResult exhaustive_search(Model& model,
                                   std::uint64_t max_plans = 10'000'000) {
  const int rows = model.rows();
  const int cols = model.cols();

  ExhaustiveResult result;
  result.best_plan.resize(static_cast<std::size_t>(cols));
  const auto snapshot_plan = [&] {
    for (int c = 0; c < cols; ++c) {
      result.best_plan[static_cast<std::size_t>(c)] = model.plan_row(c);
    }
  };
  const auto total_cost = [&] {
    double sum = 0;
    for (int c = 0; c < cols; ++c) sum += model.cell(model.plan_row(c), c);
    return sum;
  };

  snapshot_plan();
  result.best_cost = total_cost();
  if (cols == 0) return result;

  const std::function<void(int)> recurse = [&](int c) {
    if (result.evaluated >= max_plans) return;
    if (c == cols) {
      ++result.evaluated;
      const double cost = total_cost();
      if (cost < result.best_cost) {
        result.best_cost = cost;
        snapshot_plan();
      }
      return;
    }
    if (!model.movable(c)) {
      recurse(c + 1);
      return;
    }
    const int original = model.plan_row(c);
    for (int r = 0; r < rows; ++r) {
      // Eviction to the queue is only a state for columns that start there.
      if (r == model.virtual_row() && original != model.virtual_row()) {
        continue;
      }
      if (model.plan_row(c) != r) model.move(r, c);
      recurse(c + 1);
    }
    if (model.plan_row(c) != original) model.move(original, c);
  };
  recurse(0);

  // Replay the best plan into the model.
  for (int c = 0; c < cols; ++c) {
    const int r = result.best_plan[static_cast<std::size_t>(c)];
    if (model.plan_row(c) != r) model.move(r, c);
  }
  return result;
}

}  // namespace easched::core
