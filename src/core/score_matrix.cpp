#include "core/score_matrix.hpp"

#include <algorithm>
#include <cstring>

#include "core/penalties.hpp"
#include "core/solver_pool.hpp"
#include "support/contracts.hpp"
#include "workload/satisfaction.hpp"

namespace easched::core {

using datacenter::HostId;
using datacenter::HostState;
using datacenter::VmId;
using datacenter::VmState;

ScoreModel::ScoreModel(const datacenter::Datacenter& dc,
                       const std::vector<VmId>& queued,
                       const ScoreParams& params, bool migration_enabled,
                       SolverPool* pool)
    : params_(params), pool_(pool) {
  const sim::SimTime now = dc.simulator().now();

  // Rows: powered-on hosts.
  std::vector<int> row_of_host(dc.num_hosts(), -1);
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const auto& host = dc.host(h);
    if (!dc.placeable(h)) continue;
    HostRow r;
    r.id = h;
    r.cpu_cap = host.spec.cpu_capacity_pct;
    r.mem_cap = host.spec.mem_mb;
    r.cpu_res = dc.reserved_cpu_pct(h);
    r.mem_res = dc.reserved_mem_mb(h);
    r.vm_count = static_cast<int>(host.vm_count());
    r.mgmt_demand = host.mgmt_demand_pct();
    for (const auto& op : host.ops) {
      r.conc_remaining_s += std::max(0.0, op.ends - now);
    }
    for (VmId v : host.residents) {
      if (dc.vm(v).state == VmState::kRunning) {
        r.running_demand += dc.vm(v).cpu_demand_pct;
      }
    }
    r.creation_cost = host.spec.creation_cost_s;
    r.migration_cost = host.spec.migration_cost_s;
    r.reliability = host.spec.reliability;
    r.arch = host.spec.arch;
    r.software = host.spec.software;
    row_of_host[h] = static_cast<int>(hosts_.size());
    hosts_.push_back(r);
  }

  auto add_column = [&](const datacenter::Vm& vm, bool is_new) {
    VmCol c;
    c.id = vm.id;
    c.cpu = vm.cpu_demand_pct;
    c.mem = vm.job.mem_mb;
    c.is_new = is_new;
    c.can_move = true;
    c.original = is_new ? virtual_row() : row_of_host[vm.host];
    if (!is_new && c.original < 0) return;  // host offline; shouldn't happen
    c.planned = c.original;
    c.elapsed_s = now - vm.job.submit;
    c.remaining_user_s = vm.job.dedicated_seconds - c.elapsed_s;
    c.remaining_work_s = vm.remaining_work_s();
    c.deadline_s = vm.job.deadline_seconds();
    c.fault_tolerance = vm.job.fault_tolerance;
    c.arch = vm.job.arch;
    c.software = vm.job.software;
    vms_.push_back(c);
  };

  for (VmId v : queued) {
    EA_EXPECTS(dc.vm(v).state == VmState::kQueued);
    add_column(dc.vm(v), /*is_new=*/true);
  }
  if (migration_enabled) {
    for (VmId v : dc.active_vms()) {
      const auto& vm = dc.vm(v);
      // VMs with an operation in flight have infinite scores everywhere
      // but home (III-A.3); excluding them as columns is equivalent.
      if (vm.state == VmState::kRunning) add_column(vm, /*is_new=*/false);
    }
  }

  const std::size_t cells = hosts_.size() * vms_.size();
  static_terms_.resize(cells);
  cache_.resize(cells);
  cache_ok_.assign(cells, 0);
  build_static_terms(pool_);
}

void ScoreModel::build_static_terms(SolverPool* pool) {
  const int nrows = static_cast<int>(hosts_.size());
  if (nrows == 0 || vms_.empty()) return;
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallel_for(nrows, [this](int begin, int end) {
      for (int r = begin; r < end; ++r) build_static_row(r);
    });
  } else {
    for (int r = 0; r < nrows; ++r) build_static_row(r);
  }
}

void ScoreModel::build_static_row(int r) {
  const HostRow& h = hosts_[static_cast<std::size_t>(r)];
  for (int c = 0; c < static_cast<int>(vms_.size()); ++c) {
    const VmCol& v = vms_[static_cast<std::size_t>(c)];
    StaticTerms& st = static_terms_[at(r, c)];
    st.compat =
        h.arch == v.arch && (h.software & v.software) == v.software;
    if (!st.compat) continue;
    const bool home = v.original == r;
    if (params_.use_virt) {
      const double pm = p_migration(h.migration_cost, v.remaining_user_s);
      st.virt = p_virt(home, /*operation_on_vm=*/false, v.is_new,
                       h.creation_cost, pm);
    }
    st.conc = p_conc(home, h.conc_remaining_s);
    st.fault = p_fault(h.reliability, v.fault_tolerance, params_.c_fail);
  }
}

void ScoreModel::prime() {
  const int nrows = static_cast<int>(hosts_.size());
  const int ncols = static_cast<int>(vms_.size());
  if (nrows == 0 || ncols == 0) return;
  const auto fill_rows = [this, ncols](int begin, int end) {
    for (int r = begin; r < end; ++r) {
      for (int c = 0; c < ncols; ++c) {
        const std::size_t i = at(r, c);
        if (!cache_ok_[i]) {
          cache_[i] = score_cell(r, c);
          cache_ok_[i] = 1;
        }
      }
    }
  };
  if (pool_ != nullptr && pool_->threads() > 1) {
    pool_->parallel_for(nrows, fill_rows);
  } else {
    fill_rows(0, nrows);
  }
}

int ScoreModel::rows() const { return static_cast<int>(hosts_.size()) + 1; }
int ScoreModel::cols() const { return static_cast<int>(vms_.size()); }

int ScoreModel::plan_row(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].planned;
}

int ScoreModel::original_row(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].original;
}

bool ScoreModel::movable(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].can_move;
}

VmId ScoreModel::vm_at(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].id;
}

HostId ScoreModel::host_at(int r) const {
  EA_EXPECTS(r >= 0 && r < virtual_row());
  return hosts_[static_cast<std::size_t>(r)].id;
}

double ScoreModel::cell(int r, int c) const {
  EA_EXPECTS(r >= 0 && r < rows());
  EA_EXPECTS(c >= 0 && c < cols());
  if (r == virtual_row()) return kInfScore;
  const std::size_t i = at(r, c);
  if (!cache_ok_[i]) {
    cache_[i] = score_cell(r, c);
    cache_ok_[i] = 1;
  }
  return cache_[i];
}

double ScoreModel::recompute_cell(int r, int c) const {
  EA_EXPECTS(r >= 0 && r < rows());
  EA_EXPECTS(c >= 0 && c < cols());
  if (r == virtual_row()) return kInfScore;
  return score_cell(r, c);
}

ScoreBreakdown ScoreModel::breakdown(int r, int c) const {
  EA_EXPECTS(r >= 0 && r < rows());
  EA_EXPECTS(c >= 0 && c < cols());
  ScoreBreakdown b;
  if (r == virtual_row()) {
    b.req = kInfScore;
    b.total = kInfScore;
    return b;
  }
  // Term-for-term mirror of score_cell(): same expressions, same
  // accumulation order, so the left-to-right sum of the terms reproduces
  // cell(r, c) bit for bit.
  const HostRow& h = hosts_[static_cast<std::size_t>(r)];
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  const StaticTerms& st = static_terms_[at(r, c)];
  if (!st.compat) {
    b.req = kInfScore;
    b.total = kInfScore;
    return b;
  }
  const bool planned_here = v.planned == r;
  const bool home = v.original == r;
  const double cpu = h.cpu_res + (planned_here ? 0.0 : v.cpu);
  const double mem = h.mem_res + (planned_here ? 0.0 : v.mem);
  const double occupation = std::max(cpu / h.cpu_cap, mem / h.mem_cap);
  b.res = p_res(occupation);
  if (is_inf_score(b.res)) {
    b.total = kInfScore;
    return b;
  }
  double s = b.res;
  if (params_.use_virt) {
    b.virt = st.virt;
    s += b.virt;
  }
  if (params_.use_conc) {
    b.conc = st.conc;
    s += b.conc;
  }
  if (params_.use_pwr) {
    const int count_wo_vm = h.vm_count - (planned_here ? 1 : 0);
    b.pwr = p_pwr(count_wo_vm, params_.th_empty, params_.c_empty, occupation,
                  params_.c_fill);
    s += b.pwr;
  }
  if (params_.use_sla) {
    double demand = h.running_demand + h.mgmt_demand;
    if (!planned_here) demand += v.cpu;
    const double rate = demand <= h.cpu_cap || demand <= 0
                            ? 1.0
                            : h.cpu_cap / demand;
    const double transfer =
        v.is_new ? h.creation_cost : (home ? 0.0 : h.migration_cost);
    const double projected =
        v.elapsed_s + transfer + v.remaining_work_s / rate;
    const double fulfilment =
        workload::satisfaction(std::max(projected, 0.0), v.deadline_s) /
        100.0;
    b.sla = p_sla(fulfilment, params_.th_sla, params_.c_sla);
    s += b.sla;
  }
  if (params_.use_fault) {
    b.fault = st.fault;
    s += b.fault;
  }
  b.total = std::min(s, kInfScore);
  return b;
}

double ScoreModel::score_cell(int r, int c) const {
  const HostRow& h = hosts_[static_cast<std::size_t>(r)];
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  const StaticTerms& st = static_terms_[at(r, c)];

  // Preq — hardware and software requirements (plan-independent).
  if (!st.compat) return kInfScore;

  const bool planned_here = v.planned == r;
  const bool home = v.original == r;

  // Pres — occupation after allocating the VM here.
  const double cpu = h.cpu_res + (planned_here ? 0.0 : v.cpu);
  const double mem = h.mem_res + (planned_here ? 0.0 : v.mem);
  const double occupation = std::max(cpu / h.cpu_cap, mem / h.mem_cap);
  double s = p_res(occupation);
  if (is_inf_score(s)) return kInfScore;

  if (params_.use_virt) {
    s += st.virt;
  }
  if (params_.use_conc) {
    s += st.conc;
  }
  if (params_.use_pwr) {
    const int count_wo_vm = h.vm_count - (planned_here ? 1 : 0);
    s += p_pwr(count_wo_vm, params_.th_empty, params_.c_empty, occupation,
               params_.c_fill);
  }
  if (params_.use_sla) {
    double demand = h.running_demand + h.mgmt_demand;
    if (!planned_here) demand += v.cpu;
    const double rate = demand <= h.cpu_cap || demand <= 0
                            ? 1.0
                            : h.cpu_cap / demand;
    // The transfer itself delays the job: creation for a new VM, the
    // migration pause when the candidate host is not the VM's home.
    const double transfer =
        v.is_new ? h.creation_cost : (home ? 0.0 : h.migration_cost);
    const double projected =
        v.elapsed_s + transfer + v.remaining_work_s / rate;
    const double fulfilment =
        workload::satisfaction(std::max(projected, 0.0), v.deadline_s) /
        100.0;
    s += p_sla(fulfilment, params_.th_sla, params_.c_sla);
  }
  if (params_.use_fault) {
    s += st.fault;
  }
  return std::min(s, kInfScore);
}

void ScoreModel::invalidate_row(int r) {
  const std::size_t ncols = vms_.size();
  if (ncols == 0) return;
  std::memset(cache_ok_.data() + at(r, 0), 0, ncols);
}

ScoreModel::Dirty ScoreModel::move(int r, int c) {
  // Hill climbing only plans moves onto real hosts; the exhaustive
  // reference solver additionally undoes placements by moving a queued
  // column back to the virtual row (r == virtual_row()).
  EA_EXPECTS(r >= 0 && r <= virtual_row());
  EA_EXPECTS(c >= 0 && c < cols());
  VmCol& v = vms_[static_cast<std::size_t>(c)];
  EA_EXPECTS(v.can_move);
  EA_EXPECTS(v.planned != r);

  Dirty dirty;
  dirty.col = c;
  dirty.row_b = r == virtual_row() ? -1 : r;
  if (v.planned != virtual_row()) {
    HostRow& old_row = hosts_[static_cast<std::size_t>(v.planned)];
    old_row.cpu_res -= v.cpu;
    old_row.mem_res -= v.mem;
    old_row.vm_count -= 1;
    old_row.running_demand -= v.cpu;
    dirty.row_a = v.planned;
  }
  if (r != virtual_row()) {
    HostRow& new_row = hosts_[static_cast<std::size_t>(r)];
    new_row.cpu_res += v.cpu;
    new_row.mem_res += v.mem;
    new_row.vm_count += 1;
    new_row.running_demand += v.cpu;
  }
  v.planned = r;
  {
    obs::PhaseProfiler::Scope scope(profiler_, obs::Phase::kInvalidate);
    if (dirty.row_a >= 0) invalidate_row(dirty.row_a);
    if (dirty.row_b >= 0) invalidate_row(dirty.row_b);
  }
  return dirty;
}

int ScoreModel::count_cache_divergences(int* first_r, int* first_c) const {
  int diverged = 0;
  for (int r = 0; r < virtual_row(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      const std::size_t i = at(r, c);
      if (!cache_ok_[i]) continue;  // cold cells cannot be stale
      // Bitwise comparison, matching the zero-tolerance contract the
      // property tests hold: both sides run the same arithmetic.
      if (cache_[i] != score_cell(r, c)) {
        if (diverged == 0) {
          if (first_r != nullptr) *first_r = r;
          if (first_c != nullptr) *first_c = c;
        }
        ++diverged;
      }
    }
  }
  return diverged;
}

void ScoreModel::debug_corrupt_cache(int r, int c, double delta) {
  EA_EXPECTS(r >= 0 && r < virtual_row());
  EA_EXPECTS(c >= 0 && c < cols());
  (void)cell(r, c);  // force the cell warm so the perturbation sticks
  cache_[at(r, c)] += delta;
}

double ScoreModel::row_aggregate(int r) const {
  EA_EXPECTS(r >= 0 && r < rows());
  if (r == virtual_row()) return kInfScore;
  double finite_sum = 0;
  int inf_count = 0;
  for (int c = 0; c < cols(); ++c) {
    const double s = cell(r, c);
    if (is_inf_score(s)) {
      ++inf_count;
    } else {
      finite_sum += s;
    }
  }
  // Fold the infinity count in at a weight that dominates any finite sum
  // but still compares two rows by their finite parts when counts tie.
  return inf_count * 1e9 + finite_sum;
}

}  // namespace easched::core
