#include "core/score_matrix.hpp"

#include <algorithm>
#include <cstring>

#include "core/penalties.hpp"
#include "core/solver_pool.hpp"
#include "support/contracts.hpp"
#include "workload/satisfaction.hpp"

namespace easched::core {

using datacenter::HostId;
using datacenter::HostState;
using datacenter::VmId;
using datacenter::VmState;

void ScoreModel::fill_column_common(VmCol& c, const datacenter::Vm& vm,
                                    bool is_new, sim::SimTime now) {
  c.id = vm.id;
  c.cpu = vm.cpu_demand_pct;
  c.mem = vm.job.mem_mb;
  c.is_new = is_new;
  c.can_move = true;
  c.elapsed_s = now - vm.job.submit;
  c.remaining_user_s = vm.job.dedicated_seconds - c.elapsed_s;
  c.remaining_work_s = vm.remaining_work_s();
  c.deadline_s = vm.job.deadline_seconds();
  c.fault_tolerance = vm.job.fault_tolerance;
  c.arch = vm.job.arch;
  c.software = vm.job.software;
}

void ScoreModel::bind_own_rows() {
  placeable_ = own_.placeable.data();
  cap_cpu_ = own_.cpu_cap.data();
  cap_mem_ = own_.mem_cap.data();
  mgmt_ = own_.mgmt.data();
  conc_ = own_.conc.data();
  cost_create_ = own_.creation.data();
  cost_migrate_ = own_.migration.data();
  reliability_ = own_.reliability.data();
  arch_ = own_.arch.data();
  software_ = own_.software.data();
}

ScoreModel::ScoreModel(const datacenter::Datacenter& dc,
                       const std::vector<VmId>& queued,
                       const ScoreParams& params, bool migration_enabled,
                       SolverPool* pool)
    : params_(params), pool_(pool) {
  const sim::SimTime now = dc.simulator().now();

  // Rows: powered-on hosts, compacted (legacy layout).
  std::vector<int> row_of_host(dc.num_hosts(), -1);
  for (HostId h = 0; h < dc.num_hosts(); ++h) {
    const auto& host = dc.host(h);
    if (!dc.placeable(h)) continue;
    row_of_host[h] = static_cast<int>(own_.id.size());
    own_.id.push_back(h);
    own_.cpu_cap.push_back(host.spec.cpu_capacity_pct);
    own_.mem_cap.push_back(host.spec.mem_mb);
    cpu_res_.push_back(dc.reserved_cpu_pct(h));
    mem_res_.push_back(dc.reserved_mem_mb(h));
    vm_count_.push_back(static_cast<int>(host.vm_count()));
    own_.mgmt.push_back(host.mgmt_demand_pct());
    double conc = 0;
    for (const auto& op : host.ops) {
      conc += std::max(0.0, op.ends - now);
    }
    own_.conc.push_back(conc);
    double running = 0;
    for (VmId v : host.residents) {
      if (dc.vm(v).state == VmState::kRunning) {
        running += dc.vm(v).cpu_demand_pct;
      }
    }
    running_.push_back(running);
    own_.creation.push_back(host.spec.creation_cost_s);
    own_.migration.push_back(host.spec.migration_cost_s);
    own_.reliability.push_back(host.spec.reliability);
    own_.arch.push_back(host.spec.arch);
    own_.software.push_back(host.spec.software);
  }
  own_.placeable.assign(own_.id.size(), 1);
  nrows_ = static_cast<int>(own_.id.size());
  bind_own_rows();

  auto add_column = [&](const datacenter::Vm& vm, bool is_new) {
    VmCol c;
    fill_column_common(c, vm, is_new, now);
    c.original = is_new ? virtual_row() : row_of_host[vm.host];
    if (!is_new && c.original < 0) return;  // host offline; shouldn't happen
    c.planned = c.original;
    vms_.push_back(c);
  };

  for (VmId v : queued) {
    EA_EXPECTS(dc.vm(v).state == VmState::kQueued);
    add_column(dc.vm(v), /*is_new=*/true);
  }
  if (migration_enabled) {
    for (VmId v : dc.active_vms()) {
      const auto& vm = dc.vm(v);
      // VMs with an operation in flight have infinite scores everywhere
      // but home (III-A.3); excluding them as columns is equivalent.
      if (vm.state == VmState::kRunning) add_column(vm, /*is_new=*/false);
    }
  }

  const std::size_t cells =
      static_cast<std::size_t>(nrows_) * vms_.size();
  static_terms_.resize(cells);
  static_ok_.assign(cells, 0);
  cache_.resize(cells);
  cache_ok_.assign(cells, 0);
  build_static_terms(pool_);
}

ScoreModel::ScoreModel(FleetState& fleet, const datacenter::Datacenter& dc,
                       const std::vector<VmId>& queued,
                       const ScoreParams& params, bool migration_enabled,
                       SolverPool* pool)
    : params_(params), pool_(pool), fleet_scratch_home_(&fleet),
      fleet_mode_(true) {
  const sim::SimTime now = dc.simulator().now();
  const FleetSnapshot& snap = fleet.snapshot();
  EA_EXPECTS(snap.size() == dc.num_hosts());
  nrows_ = static_cast<int>(snap.size());

  // Immutable attributes alias the cross-round snapshot; only the
  // plan-tracked state is copied (move() mutates it). The copies land in
  // the fleet's recycled scratch buffers — move the capacity in, then
  // assign, so steady-state rounds allocate nothing.
  placeable_ = snap.placeable.data();
  cap_cpu_ = snap.cpu_cap.data();
  cap_mem_ = snap.mem_cap.data();
  mgmt_ = snap.mgmt_demand.data();
  conc_ = snap.conc_remaining_s.data();
  cost_create_ = snap.creation_cost.data();
  cost_migrate_ = snap.migration_cost.data();
  reliability_ = snap.reliability.data();
  arch_ = snap.arch.data();
  software_ = snap.software.data();
  ModelScratch& scratch = fleet.model_scratch();
  const auto take = [](auto& dst, auto& src, const auto& from) {
    dst = std::move(src);
    dst.assign(from.begin(), from.end());
  };
  take(cpu_res_, scratch.cpu_res, snap.cpu_res);
  take(mem_res_, scratch.mem_res, snap.mem_res);
  take(running_, scratch.running, snap.running_demand);
  take(vm_count_, scratch.vm_count, snap.vm_count);
  take(free_cpu_, scratch.free_cpu, fleet.index().free_cpu_all());
  take(free_mem_, scratch.free_mem, fleet.index().free_mem_all());
  take(block_free_cpu_, scratch.block_free_cpu, fleet.index().block_free_cpu());
  take(block_free_mem_, scratch.block_free_mem, fleet.index().block_free_mem());
  plan_touched_ = std::move(scratch.plan_touched);
  plan_touched_.assign(static_cast<std::size_t>(nrows_), 0);

  for (VmId v : queued) {
    EA_EXPECTS(dc.vm(v).state == VmState::kQueued);
    VmCol c;
    fill_column_common(c, dc.vm(v), /*is_new=*/true, now);
    c.original = virtual_row();
    c.planned = c.original;
    // A queued VM's score column is round-time-independent unless PSLA is
    // on (Pvirt charges the creation cost, not the time-varying Pm; Pconc
    // cells change only when their host is dirtied, which invalidates
    // them): carry it across rounds.
    if (!params_.use_sla) {
      c.persist = fleet.col_cache(c.id, snap.size());
    }
    vms_.push_back(c);
  }
  if (migration_enabled) {
    for (VmId v : dc.active_vms()) {
      const auto& vm = dc.vm(v);
      if (vm.state != VmState::kRunning) continue;
      // Mirrors the legacy row_of_host < 0 exclusion: a running VM on a
      // non-placeable host is pinned, not a column.
      if (snap.placeable[vm.host] == 0) continue;
      VmCol c;
      fill_column_common(c, vm, /*is_new=*/false, now);
      c.original = static_cast<int>(vm.host);
      c.planned = c.original;
      vms_.push_back(c);
    }
  }

  // The M x N arrays are the round's dominant allocation at fleet scale;
  // recycle them too. resize() (not assign) for the data arrays: stale
  // contents are unreadable behind the zeroed _ok bitmaps, so only the
  // bitmaps pay a fleet-sized clear per round.
  const std::size_t cells =
      static_cast<std::size_t>(nrows_) * vms_.size();
  static_terms_ = std::move(scratch.static_terms);
  static_terms_.resize(cells);
  static_ok_ = std::move(scratch.static_ok);
  static_ok_.assign(cells, 0);  // built lazily; most cells prune away
  cache_ = std::move(scratch.cache);
  cache_.resize(cells);
  cache_ok_ = std::move(scratch.cache_ok);
  cache_ok_.assign(cells, 0);
}

ScoreModel::~ScoreModel() {
  if (fleet_scratch_home_ == nullptr) return;
  ModelScratch& scratch = fleet_scratch_home_->model_scratch();
  scratch.cpu_res = std::move(cpu_res_);
  scratch.mem_res = std::move(mem_res_);
  scratch.running = std::move(running_);
  scratch.vm_count = std::move(vm_count_);
  scratch.free_cpu = std::move(free_cpu_);
  scratch.free_mem = std::move(free_mem_);
  scratch.block_free_cpu = std::move(block_free_cpu_);
  scratch.block_free_mem = std::move(block_free_mem_);
  scratch.plan_touched = std::move(plan_touched_);
  scratch.static_terms = std::move(static_terms_);
  scratch.static_ok = std::move(static_ok_);
  scratch.cache = std::move(cache_);
  scratch.cache_ok = std::move(cache_ok_);
}

void ScoreModel::build_static_terms(SolverPool* pool) {
  const int nrows = nrows_;
  if (nrows == 0 || vms_.empty()) return;
  const auto build_rows = [this](int begin, int end) {
    const int ncols = static_cast<int>(vms_.size());
    for (int r = begin; r < end; ++r) {
      for (int c = 0; c < ncols; ++c) build_static_cell(r, c);
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallel_for(nrows, build_rows);
  } else {
    build_rows(0, nrows);
  }
  std::fill(static_ok_.begin(), static_ok_.end(), 1);
}

void ScoreModel::build_static_cell(int r, int c) const {
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  StaticTerms& st = static_terms_[at(r, c)];
  st.compat = placeable_[r] != 0 && arch_[r] == v.arch &&
              (software_[r] & v.software) == v.software;
  if (!st.compat) return;
  const bool home = v.original == r;
  if (params_.use_virt) {
    const double pm = p_migration(cost_migrate_[r], v.remaining_user_s);
    st.virt = p_virt(home, /*operation_on_vm=*/false, v.is_new,
                     cost_create_[r], pm);
  }
  st.conc = p_conc(home, conc_[r]);
  st.fault = p_fault(reliability_[r], v.fault_tolerance, params_.c_fail);
}

void ScoreModel::prime() {
  if (fleet_mode_) return;  // the argmin warms what it reads
  const int nrows = nrows_;
  const int ncols = static_cast<int>(vms_.size());
  if (nrows == 0 || ncols == 0) return;
  const auto fill_rows = [this, ncols](int begin, int end) {
    for (int r = begin; r < end; ++r) {
      for (int c = 0; c < ncols; ++c) {
        const std::size_t i = at(r, c);
        if (!cache_ok_[i]) {
          cache_[i] = score_cell(r, c);
          cache_ok_[i] = 1;
        }
      }
    }
  };
  if (pool_ != nullptr && pool_->threads() > 1) {
    pool_->parallel_for(nrows, fill_rows);
  } else {
    fill_rows(0, nrows);
  }
}

int ScoreModel::rows() const { return nrows_ + 1; }
int ScoreModel::cols() const { return static_cast<int>(vms_.size()); }

int ScoreModel::plan_row(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].planned;
}

int ScoreModel::original_row(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].original;
}

bool ScoreModel::movable(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].can_move;
}

VmId ScoreModel::vm_at(int c) const {
  EA_EXPECTS(c >= 0 && c < cols());
  return vms_[static_cast<std::size_t>(c)].id;
}

HostId ScoreModel::host_at(int r) const {
  EA_EXPECTS(r >= 0 && r < virtual_row());
  return fleet_mode_ ? static_cast<HostId>(r)
                     : own_.id[static_cast<std::size_t>(r)];
}

double ScoreModel::cell(int r, int c) const {
  EA_EXPECTS(r >= 0 && r < rows());
  EA_EXPECTS(c >= 0 && c < cols());
  if (r == virtual_row()) return kInfScore;
  const std::size_t i = at(r, c);
  if (!cache_ok_[i]) {
    FleetColCache* persist = vms_[static_cast<std::size_t>(c)].persist;
    if (persist != nullptr && plan_touched_[static_cast<std::size_t>(r)] == 0) {
      // Fleet mode, untouched row: the row's plan state equals the
      // snapshot, so the cross-round persisted value (computed under the
      // same state last round — its host would have been dirtied
      // otherwise) is exact; a fresh evaluation is persisted for the next
      // round.
      auto& ok = persist->ok[static_cast<std::size_t>(r)];
      if (ok != 0) {
        cache_[i] = persist->by_host[static_cast<std::size_t>(r)];
      } else {
        cache_[i] = score_cell(r, c);
        persist->by_host[static_cast<std::size_t>(r)] = cache_[i];
        ok = 1;
      }
    } else {
      cache_[i] = score_cell(r, c);
    }
    cache_ok_[i] = 1;
  }
  return cache_[i];
}

double ScoreModel::recompute_cell(int r, int c) const {
  EA_EXPECTS(r >= 0 && r < rows());
  EA_EXPECTS(c >= 0 && c < cols());
  if (r == virtual_row()) return kInfScore;
  return score_cell(r, c);
}

bool ScoreModel::provably_inf(int r, int c) const {
  if (!fleet_mode_) return false;
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  if (v.planned == r) return false;  // need is 0; the keep cell may be finite
  if (placeable_[r] == 0) return true;      // compat folds placeability
  if (arch_[r] != v.arch || (software_[r] & v.software) != v.software) {
    return true;
  }
  return v.cpu > free_cpu_[static_cast<std::size_t>(r)] ||
         v.mem > free_mem_[static_cast<std::size_t>(r)];
}

bool ScoreModel::skip_block(int c, int blk) const {
  if (!fleet_mode_) return false;
  if (blk < 0 || blk >= static_cast<int>(block_free_cpu_.size())) {
    return false;  // the virtual row's tail block is never skippable
  }
  // The block maxima only prove capacity infeasibility, not compatibility
  // — but a skipped candidate would have delta >= 0 either way, and the
  // plan row is exempt because rescans skip it anyway.
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  return v.cpu > block_free_cpu_[static_cast<std::size_t>(blk)] ||
         v.mem > block_free_mem_[static_cast<std::size_t>(blk)];
}

ScoreBreakdown ScoreModel::breakdown(int r, int c) const {
  EA_EXPECTS(r >= 0 && r < rows());
  EA_EXPECTS(c >= 0 && c < cols());
  ScoreBreakdown b;
  if (r == virtual_row()) {
    b.req = kInfScore;
    b.total = kInfScore;
    return b;
  }
  // Term-for-term mirror of score_cell(): same expressions, same
  // accumulation order, so the left-to-right sum of the terms reproduces
  // cell(r, c) bit for bit.
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  const StaticTerms& st = ensure_static(r, c);
  if (!st.compat) {
    b.req = kInfScore;
    b.total = kInfScore;
    return b;
  }
  const bool planned_here = v.planned == r;
  const bool home = v.original == r;
  const double cpu =
      cpu_res_[static_cast<std::size_t>(r)] + (planned_here ? 0.0 : v.cpu);
  const double mem =
      mem_res_[static_cast<std::size_t>(r)] + (planned_here ? 0.0 : v.mem);
  const double occupation =
      std::max(cpu / cap_cpu_[r], mem / cap_mem_[r]);
  b.res = p_res(occupation);
  if (is_inf_score(b.res)) {
    b.total = kInfScore;
    return b;
  }
  double s = b.res;
  if (params_.use_virt) {
    b.virt = st.virt;
    s += b.virt;
  }
  if (params_.use_conc) {
    b.conc = st.conc;
    s += b.conc;
  }
  if (params_.use_pwr) {
    const int count_wo_vm =
        vm_count_[static_cast<std::size_t>(r)] - (planned_here ? 1 : 0);
    b.pwr = p_pwr(count_wo_vm, params_.th_empty, params_.c_empty, occupation,
                  params_.c_fill);
    s += b.pwr;
  }
  if (params_.use_sla) {
    double demand = running_[static_cast<std::size_t>(r)] + mgmt_[r];
    if (!planned_here) demand += v.cpu;
    const double rate =
        demand <= cap_cpu_[r] || demand <= 0 ? 1.0 : cap_cpu_[r] / demand;
    const double transfer =
        v.is_new ? cost_create_[r] : (home ? 0.0 : cost_migrate_[r]);
    const double projected =
        v.elapsed_s + transfer + v.remaining_work_s / rate;
    const double fulfilment =
        workload::satisfaction(std::max(projected, 0.0), v.deadline_s) /
        100.0;
    b.sla = p_sla(fulfilment, params_.th_sla, params_.c_sla);
    s += b.sla;
  }
  if (params_.use_fault) {
    b.fault = st.fault;
    s += b.fault;
  }
  b.total = std::min(s, kInfScore);
  return b;
}

double ScoreModel::score_cell(int r, int c) const {
  const VmCol& v = vms_[static_cast<std::size_t>(c)];
  const StaticTerms& st = ensure_static(r, c);

  // Preq — hardware and software requirements (plan-independent).
  if (!st.compat) return kInfScore;

  const bool planned_here = v.planned == r;
  const bool home = v.original == r;

  // Pres — occupation after allocating the VM here.
  const double cpu =
      cpu_res_[static_cast<std::size_t>(r)] + (planned_here ? 0.0 : v.cpu);
  const double mem =
      mem_res_[static_cast<std::size_t>(r)] + (planned_here ? 0.0 : v.mem);
  const double occupation =
      std::max(cpu / cap_cpu_[r], mem / cap_mem_[r]);
  double s = p_res(occupation);
  if (is_inf_score(s)) return kInfScore;

  if (params_.use_virt) {
    s += st.virt;
  }
  if (params_.use_conc) {
    s += st.conc;
  }
  if (params_.use_pwr) {
    const int count_wo_vm =
        vm_count_[static_cast<std::size_t>(r)] - (planned_here ? 1 : 0);
    s += p_pwr(count_wo_vm, params_.th_empty, params_.c_empty, occupation,
               params_.c_fill);
  }
  if (params_.use_sla) {
    double demand = running_[static_cast<std::size_t>(r)] + mgmt_[r];
    if (!planned_here) demand += v.cpu;
    const double rate =
        demand <= cap_cpu_[r] || demand <= 0 ? 1.0 : cap_cpu_[r] / demand;
    // The transfer itself delays the job: creation for a new VM, the
    // migration pause when the candidate host is not the VM's home.
    const double transfer =
        v.is_new ? cost_create_[r] : (home ? 0.0 : cost_migrate_[r]);
    const double projected =
        v.elapsed_s + transfer + v.remaining_work_s / rate;
    const double fulfilment =
        workload::satisfaction(std::max(projected, 0.0), v.deadline_s) /
        100.0;
    s += p_sla(fulfilment, params_.th_sla, params_.c_sla);
  }
  if (params_.use_fault) {
    s += st.fault;
  }
  return std::min(s, kInfScore);
}

void ScoreModel::invalidate_row(int r) {
  const std::size_t ncols = vms_.size();
  if (ncols == 0) return;
  std::memset(cache_ok_.data() + at(r, 0), 0, ncols);
}

void ScoreModel::touch_row(int r) {
  const auto i = static_cast<std::size_t>(r);
  plan_touched_[i] = 1;
  free_cpu_[i] = placeable_[r] != 0
                     ? cap_cpu_[r] * kFleetOverMargin - cpu_res_[i]
                     : -1.0;
  free_mem_[i] = placeable_[r] != 0
                     ? cap_mem_[r] * kFleetOverMargin - mem_res_[i]
                     : -1.0;
  rebuild_margin_block(r / kArgminBlock);
}

void ScoreModel::rebuild_margin_block(int blk) {
  const int lo = blk * kArgminBlock;
  const int hi = std::min(nrows_, lo + kArgminBlock);
  double best_cpu = -1.0;
  double best_mem = -1.0;
  for (int r = lo; r < hi; ++r) {
    best_cpu = std::max(best_cpu, free_cpu_[static_cast<std::size_t>(r)]);
    best_mem = std::max(best_mem, free_mem_[static_cast<std::size_t>(r)]);
  }
  block_free_cpu_[static_cast<std::size_t>(blk)] = best_cpu;
  block_free_mem_[static_cast<std::size_t>(blk)] = best_mem;
}

ScoreModel::Dirty ScoreModel::move(int r, int c) {
  // Hill climbing only plans moves onto real hosts; the exhaustive
  // reference solver additionally undoes placements by moving a queued
  // column back to the virtual row (r == virtual_row()).
  EA_EXPECTS(r >= 0 && r <= virtual_row());
  EA_EXPECTS(c >= 0 && c < cols());
  VmCol& v = vms_[static_cast<std::size_t>(c)];
  EA_EXPECTS(v.can_move);
  EA_EXPECTS(v.planned != r);

  Dirty dirty;
  dirty.col = c;
  dirty.row_b = r == virtual_row() ? -1 : r;
  if (v.planned != virtual_row()) {
    const auto old_row = static_cast<std::size_t>(v.planned);
    cpu_res_[old_row] -= v.cpu;
    mem_res_[old_row] -= v.mem;
    vm_count_[old_row] -= 1;
    running_[old_row] -= v.cpu;
    dirty.row_a = v.planned;
  }
  if (r != virtual_row()) {
    const auto new_row = static_cast<std::size_t>(r);
    cpu_res_[new_row] += v.cpu;
    mem_res_[new_row] += v.mem;
    vm_count_[new_row] += 1;
    running_[new_row] += v.cpu;
  }
  v.planned = r;
  if (fleet_mode_) {
    if (dirty.row_a >= 0) touch_row(dirty.row_a);
    if (dirty.row_b >= 0) touch_row(dirty.row_b);
  }
  {
    obs::PhaseProfiler::Scope scope(profiler_, obs::Phase::kInvalidate);
    if (dirty.row_a >= 0) invalidate_row(dirty.row_a);
    if (dirty.row_b >= 0) invalidate_row(dirty.row_b);
  }
  return dirty;
}

int ScoreModel::count_cache_divergences(int* first_r, int* first_c) const {
  int diverged = 0;
  for (int r = 0; r < virtual_row(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      const std::size_t i = at(r, c);
      if (!cache_ok_[i]) continue;  // cold cells cannot be stale
      // Bitwise comparison, matching the zero-tolerance contract the
      // property tests hold: both sides run the same arithmetic.
      if (cache_[i] != score_cell(r, c)) {
        if (diverged == 0) {
          if (first_r != nullptr) *first_r = r;
          if (first_c != nullptr) *first_c = c;
        }
        ++diverged;
      }
    }
  }
  return diverged;
}

void ScoreModel::debug_corrupt_cache(int r, int c, double delta) {
  EA_EXPECTS(r >= 0 && r < virtual_row());
  EA_EXPECTS(c >= 0 && c < cols());
  (void)cell(r, c);  // force the cell warm so the perturbation sticks
  cache_[at(r, c)] += delta;
}

double ScoreModel::row_aggregate(int r) const {
  EA_EXPECTS(r >= 0 && r < rows());
  if (r == virtual_row()) return kInfScore;
  double finite_sum = 0;
  int inf_count = 0;
  for (int c = 0; c < cols(); ++c) {
    const double s = cell(r, c);
    if (is_inf_score(s)) {
      ++inf_count;
    } else {
      finite_sum += s;
    }
  }
  // Fold the infinity count in at a weight that dominates any finite sum
  // but still compares two rows by their finite parts when counts tie.
  return inf_count * 1e9 + finite_sum;
}

}  // namespace easched::core
