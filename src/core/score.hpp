// Score constants and parameters of the score-based scheduler
// (section III-A of the paper).
#pragma once

namespace easched::core {

/// The paper's "infinity" score: combinations that are not viable. A large
/// finite sentinel instead of IEEE infinity so differences between two
/// infeasible cells are 0 (not NaN) and the hill-climbing deltas stay
/// well-defined. Any score >= kInfScore/2 is treated as infinite.
inline constexpr double kInfScore = 1e15;

[[nodiscard]] constexpr bool is_inf_score(double s) noexcept {
  return s >= kInfScore * 0.5;
}

/// Row-block granularity shared by the solver's blocked argmin
/// (hill_climb.hpp) and the fleet snapshot's capacity-bucket index
/// (fleet.hpp): the per-block free-capacity maxima the index maintains are
/// consulted block-for-block by the argmin, so both sides must agree on
/// the block size.
inline constexpr int kArgminBlock = 32;

/// "Soft infinity" for the PSLA penalty: unacceptable fulfilment makes a
/// host essentially forbidden, but — unlike hard infeasibility (Preq,
/// Pres) — a VM whose SLA is hopeless on *every* host must still run
/// somewhere rather than starve in the queue (whose score is the hard
/// kInfScore). Keeping the two infinities apart preserves the paper's
/// "queue has the maximum penalty" rule.
inline constexpr double kSoftInfScore = 1e9;

/// Weights and feature flags of the score. Flags off reproduce the paper's
/// ablations: SB0 = req+res+pwr; SB1 = SB0+virt; SB2 = SB1+conc; the full
/// policy adds migration (policy-level flag), SLA and reliability terms.
struct ScoreParams {
  bool use_virt = true;   ///< Pvirt: creation/migration overhead
  bool use_conc = true;   ///< Pconc: concurrent-operation overhead
  bool use_pwr = true;    ///< Ppwr: consolidation reward / empty penalty
  bool use_sla = false;   ///< PSLA: dynamic SLA enforcement
  bool use_fault = false; ///< Pfault: reliability

  // Ppwr (evaluation values, section V: THempty=1, Cempty=20, Cfill=40).
  int th_empty = 1;       ///< host "mostly empty" when #VM <= th_empty
  double c_empty = 20;    ///< cost of keeping an under-used host
  double c_fill = 40;     ///< reward slope for filling occupied hosts

  // PSLA.
  double c_sla = 100;     ///< cost of running while violating the SLA
  double th_sla = 0.5;    ///< fulfilment below this is unacceptable (inf)

  // Pfault.
  double c_fail = 200;    ///< cost of a potential failure
};

}  // namespace easched::core
