#include "core/solver_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

namespace easched::core {

SolverPool::SolverPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

SolverPool::~SolverPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void SolverPool::run_chunk(int index) const {
  // Fixed partition: chunk i covers [i*n/T, (i+1)*n/T). Depends only on
  // (n, threads) so serial and threaded sweeps visit identical ranges.
  const std::int64_t n = n_;
  const std::int64_t t = threads_;
  const int begin = static_cast<int>(index * n / t);
  const int end = static_cast<int>((index + 1) * n / t);
  if (begin < end) (*fn_)(begin, end);
}

void SolverPool::parallel_for(int n, const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  if (threads_ == 1) {
    fn(0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the calling thread owns chunk 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
}

void SolverPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [this, seen] { return generation_ != seen; });
      seen = generation_;
      if (stop_) return;
    }
    run_chunk(index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

int SolverPool::env_threads() {
  const char* env = std::getenv("EASCHED_SOLVER_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const long value = std::strtol(env, nullptr, 10);
  return static_cast<int>(std::clamp(value, 1L, 64L));
}

}  // namespace easched::core
