#include "core/penalties.hpp"

#include "support/contracts.hpp"

namespace easched::core {

double p_req(bool hw_sw_compatible) {
  return hw_sw_compatible ? 0.0 : kInfScore;
}

double p_res(double occupation_after) {
  return occupation_after > 1.0 + 1e-9 ? kInfScore : 0.0;
}

double p_migration(double cm, double tr) {
  EA_EXPECTS(cm > 0);
  if (tr < cm) return 2.0 * cm;
  return cm * cm / (2.0 * tr);
}

double p_virt(bool vm_in_host, bool operation_on_vm, bool vm_is_new,
              double cc, double pm) {
  if (vm_in_host) return 0.0;
  if (operation_on_vm) return kInfScore;
  if (vm_is_new) return cc;
  return pm;
}

double p_conc(bool vm_in_host, double concurrent_ops_remaining_s) {
  EA_EXPECTS(concurrent_ops_remaining_s >= 0);
  return vm_in_host ? 0.0 : concurrent_ops_remaining_s;
}

double p_pwr(int vm_count, int th_empty, double c_empty,
             double occupation_after, double c_fill) {
  const double t_empty = vm_count <= th_empty ? 1.0 : 0.0;
  return t_empty * c_empty - occupation_after * c_fill;
}

double p_sla(double fulfilment, double th_sla, double c_sla) {
  EA_EXPECTS(fulfilment >= 0.0 && fulfilment <= 1.0);
  if (fulfilment >= 1.0) return 0.0;
  if (fulfilment <= th_sla) return kSoftInfScore;
  return c_sla;
}

double p_fault(double reliability, double fault_tolerance, double c_fail) {
  return ((1.0 - reliability) - fault_tolerance) * c_fail;
}

}  // namespace easched::core
