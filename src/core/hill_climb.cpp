#include "core/hill_climb.hpp"

#include "core/score_matrix.hpp"

namespace easched::core {

// The instantiations the library itself uses; keeps the templates honest
// even in builds that only link the library. The reference solver is
// instantiated too: the differential tests and the solver_scaling bench
// diff the production solver against it on the real model.
template HillClimbStats hill_climb<ScoreModel>(ScoreModel&,
                                               const HillClimbLimits&);
template HillClimbStats hill_climb_reference<ScoreModel>(
    ScoreModel&, const HillClimbLimits&);

}  // namespace easched::core
