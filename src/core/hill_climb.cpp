#include "core/hill_climb.hpp"

#include "core/score_matrix.hpp"

namespace easched::core {

// The one instantiation the library itself uses; keeps the template honest
// even in builds that only link the library.
template HillClimbStats hill_climb<ScoreModel>(ScoreModel&,
                                               const HillClimbLimits&);

}  // namespace easched::core
