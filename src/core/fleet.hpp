// Cross-round incremental fleet state for the scheduling core.
//
// The legacy ScoreModel constructor re-reads every host from the
// Datacenter at the start of every round — O(M) pointer-chasing queries
// plus an O(M x N) eager static-term build. Between rounds almost nothing
// changes: a round touches the few hosts that gained/lost a VM or an
// operation, and the rest of the fleet is byte-for-byte identical to last
// round's snapshot. FleetState exploits that: it owns a persistent SoA
// snapshot of the per-host hot fields, consumes the Datacenter's dirty
// journal (drain_fleet_dirty) each round, and re-reads *only* the dirtied
// hosts — with the exact same expressions the legacy constructor uses, so
// the snapshot is bitwise equal to a fresh full read at all times (the
// kFleetSnapshot invariant rule holds this).
//
// Three cooperating pieces live here:
//
//   FleetSnapshot   — SoA arrays over all HostIds (row index == HostId).
//                     The fleet-mode ScoreModel points straight into these
//                     arrays for its immutable row attributes; only the
//                     plan-tracked fields (reservations, counts, demand)
//                     are copied per round.
//
//   HostBucketIndex — capacity buckets over the snapshot: per-host free
//                     CPU/memory margins (conservatively widened by
//                     kFleetOverMargin, so "margin exceeded" provably
//                     implies an infinite Pres cell), per-kArgminBlock
//                     maxima of those margins (consulted block-for-block
//                     by hill_climb's blocked argmin to skip whole blocks
//                     of hosts that cannot accept a VM), and a free-CPU
//                     band histogram for O(1) candidate-count estimates.
//                     Updated incrementally for dirty hosts only.
//
//   FleetColCache   — persistent per-VM score columns. A queued VM that
//                     stays queued across rounds keeps its evaluated
//                     Score(h, vm) cells: a cell only changes when its
//                     host is dirtied, so clean cells are carried over and
//                     the next round's argmin starts warm. (Only columns
//                     whose score is round-time-independent are persisted;
//                     see ScoreModel.)
//
// Ownership: the score-based policy owns one FleetState per policy
// instance and refreshes it at the top of every full round; the per-round
// ScoreModel borrows it (non-const, for cache write-through) and must not
// outlive the round. The Datacenter only owns the journal.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/score.hpp"
#include "datacenter/ids.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace easched::datacenter {
class Datacenter;
}  // namespace easched::datacenter

namespace easched::core {

/// Conservative over-capacity margin for the pruning margins. A host's
/// free margin is cap * kFleetOverMargin - reserved; `need > margin` then
/// safely implies p_res's exact predicate (reserved + need) / cap >
/// 1 + 1e-9 — the 1e-7 headroom dwarfs the ~1e-16 rounding of the two
/// different evaluation orders, so pruning can never skip a cell the exact
/// evaluation would have scored finite. Boundary cells (need <= margin but
/// possibly still over) are evaluated exactly.
inline constexpr double kFleetOverMargin = 1.0 + 1e-7;

/// SoA snapshot of every host's score-relevant fields, row index == HostId.
/// Field definitions (and evaluation expressions) mirror the legacy
/// ScoreModel constructor exactly; kFleetSnapshot asserts bitwise equality
/// against a fresh re-read.
struct FleetSnapshot {
  std::vector<unsigned char> placeable;  ///< dc.placeable(h) at refresh
  std::vector<double> cpu_cap, mem_cap;
  std::vector<double> cpu_res, mem_res;  ///< reserved CPU % / memory MB
  std::vector<int> vm_count;
  std::vector<double> running_demand;    ///< Σ running residents' demand
  std::vector<double> mgmt_demand;       ///< Σ in-flight op overhead
  std::vector<double> conc_remaining_s;  ///< Σ max(0, op.ends - now)
  std::vector<double> creation_cost, migration_cost;
  std::vector<double> reliability;
  std::vector<workload::Arch> arch;
  std::vector<std::uint32_t> software;

  [[nodiscard]] std::size_t size() const { return placeable.size(); }
  void resize(std::size_t n);
};

/// Capacity-bucketed host index over the snapshot (see header comment).
/// All three structures are maintained per-host: update(h, ...) is O(block)
/// for the block maxima and O(1) for the histogram.
class HostBucketIndex {
 public:
  /// Free-CPU band width / count for the candidate histogram. 64 bands of
  /// 25 CPU-% cover margins up to 1600 % (a 16-way machine); anything
  /// larger saturates into the top band, which only ever *over*-counts
  /// candidates (the histogram is advisory, never used for pruning).
  static constexpr double kBandWidthPct = 25.0;
  static constexpr int kBands = 64;

  void reset(std::size_t num_hosts);
  /// Recomputes host `h`'s margins from the snapshot entry and maintains
  /// the block maxima and the band histogram.
  void update(datacenter::HostId h, const FleetSnapshot& snap);

  [[nodiscard]] std::size_t size() const { return free_cpu_.size(); }
  /// Free margin of `h` (cap * kFleetOverMargin - reserved); -1 when the
  /// host is not placeable, so any need > margin and it prunes away.
  [[nodiscard]] double free_cpu(datacenter::HostId h) const {
    return free_cpu_[h];
  }
  [[nodiscard]] double free_mem(datacenter::HostId h) const {
    return free_mem_[h];
  }
  [[nodiscard]] const std::vector<double>& free_cpu_all() const {
    return free_cpu_;
  }
  [[nodiscard]] const std::vector<double>& free_mem_all() const {
    return free_mem_;
  }
  /// Per-kArgminBlock maxima of the margins (what hill_climb's block skip
  /// consults through the ScoreModel).
  [[nodiscard]] const std::vector<double>& block_free_cpu() const {
    return block_free_cpu_;
  }
  [[nodiscard]] const std::vector<double>& block_free_mem() const {
    return block_free_mem_;
  }

  /// Band of a free-CPU margin (-1 for unplaceable margins).
  [[nodiscard]] static int band_of(double free_cpu_pct);
  [[nodiscard]] int band_count(int band) const { return band_count_[band]; }
  /// Upper bound on the number of hosts whose free CPU could fit
  /// `cpu_need_pct` (counts every band at or above the need's band, so the
  /// boundary band over-counts — a conservative candidate estimate).
  [[nodiscard]] int candidate_upper_bound(double cpu_need_pct) const;

  /// Test hook: perturbs host `h`'s stored free-CPU margin without
  /// touching blocks or bands, simulating a missed index update (the
  /// kFleetIndex mutation tests use this).
  void debug_corrupt(datacenter::HostId h, double delta);

 private:
  void rebuild_block(int blk);

  std::vector<double> free_cpu_, free_mem_;
  std::vector<double> block_free_cpu_, block_free_mem_;
  std::vector<int> band_count_;    ///< histogram over free-CPU bands
  std::vector<std::int8_t> band_of_host_;  ///< -1: not counted
};

/// Persistent score column of one queued VM: Score(h, vm) per HostId plus
/// a per-cell validity flag. Cells are invalidated when their host is
/// dirtied and the whole column is dropped when the VM leaves the queue.
struct FleetColCache {
  std::vector<double> by_host;
  std::vector<unsigned char> ok;
};

/// Plan-independent penalty terms of one (host, vm) cell, fixed at
/// snapshot time (see ScoreModel: Preq compatibility with placeability
/// folded in, Pvirt, Pconc, Pfault). Defined here so the fleet scratch
/// below can own the backing array across rounds.
struct CellStaticTerms {
  double virt = 0;
  double conc = 0;
  double fault = 0;
  bool compat = false;
};

/// Round-to-round reusable backing buffers for the fleet-mode ScoreModel.
/// The per-round matrices are M x N — multiple MB at fleet scale — and a
/// fresh allocate-and-zero every round costs a measurable slice of the
/// incremental round budget. The model takes these buffers in its
/// constructor and returns them in its destructor; stale contents are
/// never read because validity is tracked by the _ok bitmaps (re-zeroed
/// each round) and the plan vectors are overwritten wholesale.
struct ModelScratch {
  std::vector<double> cpu_res, mem_res, running;
  std::vector<int> vm_count;
  std::vector<double> free_cpu, free_mem, block_free_cpu, block_free_mem;
  std::vector<unsigned char> plan_touched;
  std::vector<CellStaticTerms> static_terms;
  std::vector<unsigned char> static_ok;
  std::vector<double> cache;
  std::vector<unsigned char> cache_ok;
};

class FleetState {
 public:
  struct RefreshStats {
    std::uint64_t refreshes = 0;      ///< refresh() calls
    std::uint64_t hosts_reread = 0;   ///< dirty hosts re-read, cumulative
    std::uint64_t last_reread = 0;    ///< dirty hosts re-read, last round
    std::uint64_t cols_dropped = 0;   ///< persistent columns pruned
  };

  /// Brings the snapshot and index up to date with `dc`: drains the dirty
  /// journal, re-scans placeability (circuit breakers can flip it without
  /// any Datacenter mutation), force-rereads hosts with time-dependent
  /// state (in-flight operations age with the clock), and prunes the
  /// persistent columns down to `queued`. First call (or a fleet-size
  /// change) initializes everything.
  void refresh(const datacenter::Datacenter& dc,
               const std::vector<datacenter::VmId>& queued);

  [[nodiscard]] bool initialized() const { return snap_.size() > 0; }
  [[nodiscard]] const FleetSnapshot& snapshot() const { return snap_; }
  [[nodiscard]] const HostBucketIndex& index() const { return index_; }
  [[nodiscard]] const RefreshStats& stats() const { return stats_; }

  /// The persistent score column for VM `v`, created (sized to
  /// `num_hosts`, all cells invalid) on first request. The pointer stays
  /// valid until the VM leaves the queue (node-stable map).
  [[nodiscard]] FleetColCache* col_cache(datacenter::VmId v,
                                         std::size_t num_hosts);
  [[nodiscard]] std::size_t col_cache_count() const { return cols_.size(); }

  /// The expected free margin for snapshot entry `h` — the single formula
  /// shared by the index, the ScoreModel's plan-tracked margins and the
  /// kFleetIndex checker rule.
  [[nodiscard]] static double expected_free_cpu(const FleetSnapshot& snap,
                                                datacenter::HostId h);
  [[nodiscard]] static double expected_free_mem(const FleetSnapshot& snap,
                                                datacenter::HostId h);

  /// Reads host `h`'s score-relevant fields from the Datacenter into
  /// `snap[h]` — byte-for-byte the legacy ScoreModel constructor's read
  /// expressions, same accumulation order. The single read path shared by
  /// refresh() and the kFleetSnapshot checker rule, so a clean snapshot
  /// entry is bitwise equal to a fresh full re-read.
  static void read_host(const datacenter::Datacenter& dc,
                        datacenter::HostId h, sim::SimTime now,
                        FleetSnapshot& snap);

  /// Test hooks for the kFleetSnapshot / kFleetIndex mutation tests:
  /// perturb the stored snapshot reservation / index margin of host `h`.
  void debug_corrupt_snapshot(datacenter::HostId h, double delta);
  void debug_corrupt_index(datacenter::HostId h, double delta);

  /// The reusable model buffers. The per-round ScoreModel move()s them out
  /// in its constructor and back in its destructor; between models the
  /// vectors here hold the retained capacity (contents meaningless).
  [[nodiscard]] ModelScratch& model_scratch() { return scratch_; }

 private:
  FleetSnapshot snap_;
  HostBucketIndex index_;
  std::unordered_map<datacenter::VmId, FleetColCache> cols_;
  std::vector<datacenter::HostId> dirty_scratch_;
  std::vector<datacenter::HostId> journal_scratch_;
  std::vector<unsigned char> dirty_flag_;
  std::vector<datacenter::VmId> queued_scratch_;  ///< sorted, for pruning
  ModelScratch scratch_;
  RefreshStats stats_;
};

}  // namespace easched::core
