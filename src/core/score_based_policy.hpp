// The paper's contribution: the score-based scheduling policy (SB).
//
// Every round it snapshots the system into a ScoreModel, optimizes the
// (M+1) x N matrix with hill climbing (Algorithm 1) and turns the resulting
// plan into actions: queued VMs whose plan landed on a real host are
// created there; running VMs whose plan moved are migrated (only when the
// migration capability is enabled). The configurations of the evaluation:
//   SB0 = Preq + Pres + Ppwr                  (Table II)
//   SB1 = SB0 + Pvirt                         (Table III)
//   SB2 = SB1 + Pconc                         (Table III)
//   SB  = SB2 + migration                     (Tables IV, V)
//   SB-full = SB + PSLA + Pfault              (extensions, A2/A3 benches)
#pragma once

#include <memory>

#include "core/annealing.hpp"
#include "core/fleet.hpp"
#include "core/hill_climb.hpp"
#include "core/score.hpp"
#include "core/score_matrix.hpp"
#include "core/solver_pool.hpp"
#include "sched/policy.hpp"

namespace easched::core {

/// Matrix solver used each round. Hill climbing is the paper's Algorithm 1;
/// annealing is the section-II meta-heuristic alternative (slower, can
/// escape local optima; see bench_ablation_solver / bench_ablation_anneal).
enum class MatrixSolver : std::uint8_t { kHillClimb, kAnnealing };

struct ScoreBasedConfig {
  ScoreParams params;
  bool migration = false;
  MatrixSolver solver = MatrixSolver::kHillClimb;
  AnnealingParams annealing;  ///< used when solver == kAnnealing
  /// Migration moves are only considered in periodic consolidation rounds
  /// (the paper: the policy "periodically calculates whether to move jobs
  /// in order to improve global system utility"); placements of queued VMs
  /// happen in every round.
  sim::SimTime migration_period_s = 1800;
  int max_moves = 256;            ///< Algorithm 1 iteration limit
  int max_migrations_per_round = 8;  ///< migration budget per sweep
  /// Minimum matrix improvement a migration must bring; keeps marginal
  /// reshuffles (whose cost the matrix only approximates) from happening.
  double min_migration_gain = 35;
  /// Worker threads for the matrix build and the hill-climbing sweep.
  /// 0 = take EASCHED_SOLVER_THREADS from the environment (default 1,
  /// i.e. serial). Threaded plans are bit-identical to serial ones
  /// (tests/test_solver_equivalence.cpp).
  int solver_threads = 0;
  /// Cross-round incremental scheduling core (core/fleet.hpp): keep a
  /// persistent fleet snapshot between rounds, re-read only the hosts the
  /// Datacenter's dirty journal names, and let the hill climber prune
  /// provably infeasible candidates through the capacity-bucket index.
  /// Decisions are bit-identical to the full-rebuild path (the fleet
  /// differential tests hold this); disable to force the reference
  /// rebuild-every-round behaviour. Only the hill-climb solver uses it —
  /// annealing explores uphill moves the pruned layout cannot represent —
  /// and building with -DEASCHED_FLEET_REFERENCE=ON overrides it to off.
  bool incremental = true;
  std::string label = "SB";

  static ScoreBasedConfig sb0();
  static ScoreBasedConfig sb1();
  static ScoreBasedConfig sb2();
  static ScoreBasedConfig sb();       ///< full evaluated policy
  static ScoreBasedConfig sb_full();  ///< + PSLA + Pfault extensions
};

class ScoreBasedPolicy final : public sched::Policy {
 public:
  explicit ScoreBasedPolicy(ScoreBasedConfig config)
      : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return config_.label; }
  [[nodiscard]] bool uses_migration() const override {
    return config_.migration;
  }

  std::vector<sched::Action> schedule(const sched::SchedContext& ctx) override;

  /// Section III-C: idle nodes are switched off by their aggregated matrix
  /// row score (higher aggregate — more infinities, higher penalties —
  /// goes first).
  datacenter::HostId choose_power_off(
      const sched::SchedContext& ctx,
      const std::vector<datacenter::HostId>& idle_hosts) override;

  [[nodiscard]] const ScoreBasedConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const HillClimbStats& last_stats() const noexcept {
    return last_stats_;
  }

 private:
  /// Resolves config_.solver_threads (consulting the environment once) and
  /// returns the shared pool, or nullptr when running serially.
  SolverPool* pool();

  /// LadderLevel::kFirstFit round: greedy first-fit placements of queued
  /// VMs (ascending host id), no score model, no migrations. O(queue x
  /// hosts) with no allocation beyond the action vector — the cheap rung
  /// the watchdog can always afford.
  std::vector<sched::Action> first_fit(const sched::SchedContext& ctx) const;

  ScoreBasedConfig config_;
  HillClimbStats last_stats_;
  FleetState fleet_;  ///< cross-round incremental state (incremental mode)
  sim::SimTime last_consolidation_ = -1e18;  ///< time of last migration round
  std::unique_ptr<SolverPool> pool_;  ///< lazily created, reused each round
  bool pool_resolved_ = false;
};

}  // namespace easched::core
