#include "core/score_based_policy.hpp"

#include <algorithm>
#include <optional>

#include "core/hill_climb.hpp"
#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "support/contracts.hpp"
#include "validate/validate.hpp"

namespace easched::core {

ScoreBasedConfig ScoreBasedConfig::sb0() {
  ScoreBasedConfig c;
  c.params.use_virt = false;
  c.params.use_conc = false;
  c.params.use_pwr = true;
  c.label = "SB0";
  return c;
}

ScoreBasedConfig ScoreBasedConfig::sb1() {
  ScoreBasedConfig c = sb0();
  c.params.use_virt = true;
  c.label = "SB1";
  return c;
}

ScoreBasedConfig ScoreBasedConfig::sb2() {
  ScoreBasedConfig c = sb1();
  c.params.use_conc = true;
  c.label = "SB2";
  return c;
}

ScoreBasedConfig ScoreBasedConfig::sb() {
  ScoreBasedConfig c = sb2();
  c.migration = true;
  c.label = "SB";
  return c;
}

ScoreBasedConfig ScoreBasedConfig::sb_full() {
  ScoreBasedConfig c = sb();
  c.params.use_sla = true;
  c.params.use_fault = true;
  c.label = "SB-full";
  return c;
}

SolverPool* ScoreBasedPolicy::pool() {
  if (!pool_resolved_) {
    const int threads = config_.solver_threads > 0 ? config_.solver_threads
                                                   : SolverPool::env_threads();
    if (threads > 1) pool_ = std::make_unique<SolverPool>(threads);
    pool_resolved_ = true;
  }
  return pool_.get();
}

std::vector<sched::Action> ScoreBasedPolicy::schedule(
    const sched::SchedContext& ctx) {
  const sim::SimTime now = ctx.dc.simulator().now();

  // Degradation ladder (resilience control plane). The two degraded rungs
  // skip the score model entirely; kCachedClimb keeps the cached model but
  // suspends consolidation and runs under the tightened step budget the
  // driver put in ctx.solver_budget.
  switch (ctx.ladder) {
    case resilience::LadderLevel::kFrozen:
      return {};  // freeze placements; the queue keeps building
    case resilience::LadderLevel::kFirstFit:
      return first_fit(ctx);
    case resilience::LadderLevel::kFull:
    case resilience::LadderLevel::kCachedClimb:
      break;
  }

  const bool consolidate =
      config_.migration && ctx.ladder == resilience::LadderLevel::kFull &&
      now - last_consolidation_ >= config_.migration_period_s;
  if (consolidate) last_consolidation_ = now;

  // Incremental (fleet) mode serves hill-climb rounds from the cross-round
  // snapshot instead of re-reading every host. Annealing stays on the
  // legacy full-rebuild layout: its random walk accepts uphill moves, which
  // the pruned all-hosts layout is not decision-equivalent for.
#ifdef EASCHED_FLEET_REFERENCE
  constexpr bool use_fleet = false;
#else
  const bool use_fleet =
      config_.incremental && config_.solver == MatrixSolver::kHillClimb;
#endif

  obs::PhaseProfiler* prof = obs::profiler(ctx.dc.recorder());
  std::optional<ScoreModel> model_storage;
  {
    obs::PhaseProfiler::Scope scope(prof, obs::Phase::kRebuild);
    if (use_fleet) {
      fleet_.refresh(ctx.dc, ctx.queue);
      if (auto* ck = validate::checker(ctx.dc.recorder())) {
        ck->check_fleet(fleet_, ctx.dc, now);
      }
      model_storage.emplace(fleet_, ctx.dc, ctx.queue, config_.params,
                            consolidate, pool());
    } else {
      model_storage.emplace(ctx.dc, ctx.queue, config_.params, consolidate,
                            pool());
    }
  }
  ScoreModel& model = *model_storage;
  model.set_profiler(prof);
  {
    obs::PhaseProfiler::Scope scope(prof, obs::Phase::kClimb);
    if (config_.solver == MatrixSolver::kAnnealing &&
        ctx.solver_budget == 0) {
      // Deterministic per round: derive the walk seed from the clock.
      AnnealingParams params = config_.annealing;
      params.seed ^= static_cast<std::uint64_t>(now * 1000.0);
      anneal(model, params);
      last_stats_ = {};
    } else {
      // With a watchdog budget the solver is always the hill climber: its
      // move count is the deterministic step unit the budget is written
      // in, and the cached-score rung depends on its incremental reuse.
      HillClimbLimits limits;
      limits.max_moves = config_.max_moves;
      if (ctx.solver_budget > 0) {
        limits.max_moves = std::min(limits.max_moves, ctx.solver_budget);
      }
      limits.max_migration_moves = config_.max_migrations_per_round;
      limits.min_migration_gain = config_.min_migration_gain;
      limits.pool = pool();
      last_stats_ = hill_climb(model, limits);
      if (auto* rc = resilience::controller(ctx.dc.recorder())) {
        rc->note_solver_effort(now, last_stats_.moves);
      }
    }
  }
  // The climb warmed whatever cells it touched; before committing the plan
  // to actions, hold the cache to the recompute contract (kScoreCache).
  if (auto* ck = validate::checker(ctx.dc.recorder())) {
    ck->check_score_model(model, now);
  }

  std::vector<sched::Action> actions;
  int migrations_emitted = 0;
  for (int c = 0; c < model.cols(); ++c) {
    const int planned = model.plan_row(c);
    const int original = model.original_row(c);
    if (planned == original) continue;
    if (planned == model.virtual_row()) continue;  // annealing may evict
    const datacenter::VmId v = model.vm_at(c);
    const datacenter::HostId h = model.host_at(planned);
    bool emitted = false;
    if (original == model.virtual_row()) {
      actions.push_back(sched::Action::place(v, h));
      emitted = true;
    } else if (migrations_emitted < config_.max_migrations_per_round) {
      // The hill climber enforces the migration budget internally; the
      // annealing plan is capped here.
      actions.push_back(sched::Action::migrate(v, h));
      ++migrations_emitted;
      emitted = true;
    }
    if (emitted) {
      obs::DecisionLog* dlog = obs::decisions(ctx.dc.recorder());
      obs::Tracer* tr = obs::tracer(ctx.dc.recorder());
      if (dlog != nullptr || tr != nullptr) {
        // Winning-score attribution, evaluated under the final plan (the
        // VM is planned on `planned`, everyone else where the solver left
        // them) — the configuration the actuated decision commits to.
        const ScoreBreakdown b = model.breakdown(planned, c);

        // Counterfactual: the cheapest real alternative host under the
        // same plan. Only computed when the decision log asked for it — a
        // full column scan per decision is not free.
        int runner_up = -1;
        double runner_up_total = 0;
        if (dlog != nullptr) {
          for (int r = 0; r < model.virtual_row(); ++r) {
            if (r == planned) continue;
            const double s = model.cell(r, c);
            if (s >= kInfScore) continue;
            if (runner_up < 0 || s < runner_up_total) {
              runner_up = r;
              runner_up_total = s;
            }
          }
        }

        if (tr != nullptr) {
          auto& e = tr->emit(now, obs::EventKind::kDecision);
          e.vm = v;
          e.host = h;
          if (original != model.virtual_row()) {
            e.host2 = model.host_at(original);
          }
          e.label = original == model.virtual_row() ? "place" : "migrate";
          e.arg("req", b.req)
              .arg("res", b.res)
              .arg("virt", b.virt)
              .arg("conc", b.conc)
              .arg("pwr", b.pwr)
              .arg("sla", b.sla)
              .arg("fault", b.fault)
              .arg("total", b.total);
          if (runner_up >= 0) {
            // Extra attribution args ride along only when the decision log
            // is on, so default traces stay byte-identical.
            e.arg("runner_up",
                  static_cast<double>(model.host_at(runner_up)))
                .arg("delta", runner_up_total - b.total);
          }
        }

        if (dlog != nullptr) {
          obs::DecisionRecord rec;
          rec.t = now;
          rec.kind = original == model.virtual_row()
                         ? obs::DecisionRecord::Kind::kPlace
                         : obs::DecisionRecord::Kind::kMigrate;
          rec.vm = v;
          rec.host = h;
          if (original != model.virtual_row()) {
            rec.from_host = model.host_at(original);
          }
          rec.terms = {b.req, b.res, b.virt, b.conc,
                       b.pwr, b.sla, b.fault};
          rec.total = b.total;
          if (runner_up >= 0) {
            rec.runner_up = model.host_at(runner_up);
            rec.runner_up_total = runner_up_total;
            rec.delta = runner_up_total - b.total;
          }
          dlog->add(std::move(rec));
        }
      }
    }
  }
  return actions;
}

std::vector<sched::Action> ScoreBasedPolicy::first_fit(
    const sched::SchedContext& ctx) const {
  const sim::SimTime now = ctx.dc.simulator().now();
  std::vector<sched::Action> actions;
  // Reservations planned by earlier iterations of this loop; fits() only
  // sees the live world, so stack them on top.
  std::vector<double> extra_cpu(ctx.dc.num_hosts(), 0.0);
  std::vector<double> extra_mem(ctx.dc.num_hosts(), 0.0);
  for (datacenter::VmId v : ctx.queue) {
    const auto& job = ctx.dc.vm(v).job;
    for (datacenter::HostId h = 0; h < ctx.dc.num_hosts(); ++h) {
      if (!ctx.dc.fits(h, v)) continue;
      const auto& spec = ctx.dc.host(h).spec;
      const double cpu = ctx.dc.reserved_cpu_pct(h) + extra_cpu[h] + job.cpu_pct;
      const double mem = ctx.dc.reserved_mem_mb(h) + extra_mem[h] + job.mem_mb;
      if (cpu > spec.cpu_capacity_pct || mem > spec.mem_mb) continue;
      actions.push_back(sched::Action::place(v, h));
      extra_cpu[h] += job.cpu_pct;
      extra_mem[h] += job.mem_mb;
      if (auto* tr = obs::tracer(ctx.dc.recorder())) {
        auto& e = tr->emit(now, obs::EventKind::kDecision);
        e.vm = v;
        e.host = h;
        e.label = "first-fit";
      }
      if (auto* dlog = obs::decisions(ctx.dc.recorder())) {
        // No score model on this rung — the record carries the placement
        // itself with zero terms, so rung mix still shows up in rollups.
        obs::DecisionRecord rec;
        rec.t = now;
        rec.kind = obs::DecisionRecord::Kind::kFirstFit;
        rec.vm = v;
        rec.host = h;
        dlog->add(std::move(rec));
      }
      break;
    }
  }
  // Each greedy placement counts as one solver step against the rung's
  // budget, so sustained overload can still breach its way down to frozen.
  if (auto* rc = resilience::controller(ctx.dc.recorder())) {
    rc->note_solver_effort(now, static_cast<int>(actions.size()));
  }
  return actions;
}

datacenter::HostId ScoreBasedPolicy::choose_power_off(
    const sched::SchedContext& ctx,
    const std::vector<datacenter::HostId>& idle_hosts) {
  EA_EXPECTS(!idle_hosts.empty());
  // Rank by the aggregated matrix row of each idle candidate.
  ScoreModel model(ctx.dc, ctx.queue, config_.params, config_.migration,
                   pool());
  datacenter::HostId best = idle_hosts.front();
  double best_score = -1;
  for (int r = 0; r < model.virtual_row(); ++r) {
    const datacenter::HostId h = model.host_at(r);
    if (std::find(idle_hosts.begin(), idle_hosts.end(), h) ==
        idle_hosts.end()) {
      continue;
    }
    double agg = model.row_aggregate(r);
    if (model.cols() == 0) {
      // Empty matrix: fall back to overhead-based ranking so the choice
      // stays deterministic and sensible.
      agg = ctx.dc.host(h).spec.creation_cost_s +
            ctx.dc.host(h).spec.migration_cost_s;
    }
    if (agg > best_score) {
      best_score = agg;
      best = h;
    }
  }
  return best;
}

}  // namespace easched::core
