// Extension A5: dynamic turn-on/off thresholds (section V-A future work:
// "A next step would be to dynamically adjust these thresholds").
//
// The adaptive controller starts from a deliberately conservative
// (lambda_min = 10 %, lambda_max = 60 %) setting and probes toward the
// energy-optimal region whenever the observed satisfaction stays above its
// target, backing off when SLAs start slipping. Compared against three
// static settings: the starting point, the paper's hand-tuned 30-90, and
// an over-aggressive 60-95.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace easched;

metrics::RunReport run_static(const workload::Workload& jobs, double lmin,
                              double lmax) {
  return bench::run_week(jobs, "SB", lmin, lmax).report;
}

metrics::RunReport run_adaptive(const workload::Workload& jobs) {
  experiments::RunConfig config;
  config.datacenter = experiments::evaluation_datacenter(bench::kSeed);
  config.policy = "SB";
  config.driver.power.lambda_min = 0.10;  // conservative start
  config.driver.power.lambda_max = 0.60;
  config.driver.adaptive.enabled = true;
  config.driver.adaptive.target_satisfaction = 98.0;
  config.driver.adaptive.window_s = 4 * sim::kHour;
  return experiments::run_experiment(jobs, std::move(config)).report;
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - dynamic lambda thresholds (section V-A future work)",
      "the adaptive controller should approach the hand-tuned setting's "
      "energy without SLA collapse, starting from a conservative guess");

  const auto jobs = bench::week_workload();
  const auto conservative = run_static(jobs, 0.10, 0.60);
  const auto hand_tuned = run_static(jobs, 0.30, 0.90);
  const auto aggressive = run_static(jobs, 0.60, 0.95);
  const auto adaptive = run_adaptive(jobs);

  support::TextTable table;
  auto head = bench::table_header(true, false);
  head[0] = "setting";
  table.header(head);
  table.add_row(bench::report_row("static", conservative, true));
  table.add_row(bench::report_row("static", hand_tuned, true));
  table.add_row(bench::report_row("static", aggressive, true));
  auto row = bench::report_row("adaptive", adaptive, true);
  row[1] = "10-60 start";
  table.add_row(row);
  std::printf("%s\n", table.render().c_str());

  // How much of the conservative->hand-tuned energy gap did it close?
  const double gap = conservative.energy_kwh - hand_tuned.energy_kwh;
  const double closed = conservative.energy_kwh - adaptive.energy_kwh;
  const double closed_pct = gap > 0 ? 100.0 * closed / gap : 0.0;

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"adaptive beats its conservative starting point on energy",
       adaptive.energy_kwh < conservative.energy_kwh},
      {"adaptive closes >= 50 % of the gap to the hand-tuned setting",
       closed_pct >= 50.0},
      {"adaptive keeps satisfaction near its 98 % target",
       adaptive.satisfaction >= 97.0},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  std::printf("gap to hand-tuned closed: %.0f %% (%.0f of %.0f kWh)\n",
              closed_pct, closed, gap);
  return all ? 0 : 1;
}
