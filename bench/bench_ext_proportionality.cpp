// Extension A4: energy-proportionality ablation.
//
// The paper closes section IV-A citing Barroso & Hölzle [30]: machines
// whose "power usage does not change with the load ... should be avoided
// because no wattage reduction can be obtained", and idle wattage "should
// be decreased in the industry". This ablation quantifies both remarks on
// the evaluation workload: the same score-based scheduler on three fleets
// that differ only in their power curves:
//   * table1        — the measured curve (230 W idle, 304 W full; DVFS
//                     and the kernel's energy-efficient policies included);
//   * load-constant — 304 W whenever on (no DVFS / no low-power states):
//                     consolidation only helps via turn-off;
//   * proportional  — ideal energy-proportional hardware (0 W idle,
//                     304 W full): the turn-off machinery barely matters.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace easched;

metrics::RunReport run_fleet(const workload::Workload& jobs,
                             const datacenter::PowerModel& power,
                             bool controller_enabled = true) {
  experiments::RunConfig config;
  config.datacenter = experiments::evaluation_datacenter(bench::kSeed);
  for (auto& host : config.datacenter.hosts) host.power = power;
  config.policy = "SB";
  config.driver.power.enabled = controller_enabled;
  return experiments::run_experiment(jobs, std::move(config)).report;
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - energy proportionality ablation (section IV-A remarks)",
      "load-constant machines gain nothing from consolidation while on; "
      "ideal proportional hardware makes turn-off nearly redundant");

  const auto jobs = bench::week_workload();

  const auto measured = run_fleet(jobs, datacenter::PowerModel::table1());
  const auto constant =
      run_fleet(jobs, datacenter::PowerModel::constant(304.0, 10.0));
  const datacenter::PowerModel ideal({{0.0, 0.0}, {1.0, 304.0}}, 0.0, 115.0);
  const auto proportional = run_fleet(jobs, ideal);
  // The same fleets with the turn-on/off controller disabled.
  const auto measured_no_ctrl =
      run_fleet(jobs, datacenter::PowerModel::table1(), false);
  const auto constant_no_ctrl =
      run_fleet(jobs, datacenter::PowerModel::constant(304.0, 10.0), false);
  const auto proportional_no_ctrl = run_fleet(jobs, ideal, false);

  support::TextTable table;
  table.header({"power curve", "ctrl", "Pwr (kWh)", "S (%)",
                "turn-off saving (%)"});
  auto add = [&](const char* name, const metrics::RunReport& with,
                 const metrics::RunReport& without) {
    const double saving =
        100.0 * (1.0 - with.energy_kwh / without.energy_kwh);
    table.add_row({name, "on", support::TextTable::num(with.energy_kwh, 1),
                   support::TextTable::num(with.satisfaction, 1),
                   support::TextTable::num(saving, 1)});
    table.add_row({name, "off",
                   support::TextTable::num(without.energy_kwh, 1),
                   support::TextTable::num(without.satisfaction, 1), "-"});
  };
  add("table1 (measured)", measured, measured_no_ctrl);
  add("load-constant 304W", constant, constant_no_ctrl);
  add("ideal proportional", proportional, proportional_no_ctrl);
  std::printf("%s\n", table.render().c_str());

  const double saving_measured =
      1.0 - measured.energy_kwh / measured_no_ctrl.energy_kwh;
  const double saving_constant =
      1.0 - constant.energy_kwh / constant_no_ctrl.energy_kwh;
  const double saving_proportional =
      1.0 - proportional.energy_kwh / proportional_no_ctrl.energy_kwh;

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"turn-off saves most on load-constant machines",
       saving_constant > saving_measured},
      {"turn-off saves least on ideal proportional hardware",
       saving_proportional < saving_measured},
      {"ideal proportional fleet uses the least energy overall",
       proportional.energy_kwh < measured.energy_kwh &&
           measured.energy_kwh < constant.energy_kwh},
      {"satisfaction is unaffected by the power curve (within 0.5 pp)",
       std::abs(measured.satisfaction - constant.satisfaction) < 0.5 &&
           std::abs(measured.satisfaction - proportional.satisfaction) < 0.5},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
