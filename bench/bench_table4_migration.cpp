// Table IV: impact of migration — Dynamic Backfilling (DBF) vs the full
// score-based policy (SB, all virtualization penalties + migration), plus
// SB with aggressive thresholds. Includes the paper's headline claim.
//
// Paper rows (lambda, Work/ON, CPU, Pwr, S, delay, Mig):
//   DBF 30-90  9.7/21.3  6056.0   970.6  98.1  12.9  124
//   SB  30-90  9.7/21.0  6055.8   956.4  99.1   9.0   87
//   SB  40-90  9.7/18.3  6055.8   850.2  98.4   9.9   87
// Headline: SB@40-90 reduces datacenter power by 15 % vs Backfilling and
// 12 % vs DBF at comparable SLA fulfilment.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Table IV - policies with migration + headline claim",
      "SB beats DBF on power and S with fewer migrations; SB@40-90 gives "
      "-15 % power vs BF and -12 % vs DBF at comparable SLA fulfilment");

  const auto jobs = bench::week_workload();
  support::TextTable table;
  table.header(bench::table_header(true, true));

  const auto bf = bench::run_week(jobs, "BF", 0.30, 0.90);
  const auto dbf = bench::run_week(jobs, "DBF", 0.30, 0.90);
  const auto sb = bench::run_week(jobs, "SB", 0.30, 0.90);
  const auto sba = bench::run_week(jobs, "SB", 0.40, 0.90);

  table.add_row(bench::report_row("DBF", dbf.report, true, true));
  table.add_row(bench::report_row("SB", sb.report, true, true));
  table.add_row(bench::report_row("SB", sba.report, true, true));
  std::printf("%s\n", table.render().c_str());
  std::printf("(reference: BF@30-90 = %.1f kWh, S %.1f %%)\n\n",
              bf.report.energy_kwh, bf.report.satisfaction);

  const double cut_vs_bf =
      100.0 * (1.0 - sba.report.energy_kwh / bf.report.energy_kwh);
  const double cut_vs_dbf =
      100.0 * (1.0 - sba.report.energy_kwh / dbf.report.energy_kwh);

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"DBF saves power vs BF (migration consolidates)",
       dbf.report.energy_kwh < bf.report.energy_kwh},
      {"SB@30-90 saves power vs DBF (overhead-aware migration)",
       sb.report.energy_kwh < dbf.report.energy_kwh},
      {"SB satisfaction >= DBF satisfaction",
       sb.report.satisfaction >= dbf.report.satisfaction - 0.2},
      {"SB@40-90 keeps satisfaction near BF (within 2.5 %)",
       sba.report.satisfaction >= bf.report.satisfaction - 2.5},
      {"HEADLINE: SB@40-90 cuts >= 10 % power vs BF (paper: 15 %)",
       cut_vs_bf >= 10.0},
      {"HEADLINE: SB@40-90 cuts >= 5 % power vs DBF (paper: 12 %)",
       cut_vs_dbf >= 5.0},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  std::printf("measured: SB@40-90 vs BF = -%.1f %%, vs DBF = -%.1f %% "
              "(paper: -15 %%, -12 %%)\n",
              cut_vs_bf, cut_vs_dbf);
  return all ? 0 : 1;
}
