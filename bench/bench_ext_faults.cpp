// Extension: operation-level fault injection and recovery (faults/).
//
// A fault-heavy scenario on the reliability fleet: every migration has an
// 8 % chance of failing mid-transfer, creations occasionally fail or hang,
// hosts sometimes refuse to boot, and host 3 is a lemon (8x the trouble).
// The interesting result is that the recovery layer absorbs all of it —
// retries with backoff, rollbacks to the source host, quarantine of the
// lemon — and every job still finishes; the table quantifies what the
// chaos costs in energy and satisfaction against the same run without it.
//
// `--smoke` runs only the chaos scenario and exits non-zero unless the
// acceptance properties hold (all jobs finished; nonzero retry, rollback
// and quarantine counters), which is what the `bench_faults_smoke` ctest
// entry runs.
#include <cstdio>

#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "support/cli.hpp"

namespace {

using namespace easched;

experiments::RunResult run_drill(const workload::Workload& jobs,
                                 bool with_faults) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(5, 12, 8);
  for (std::size_t i = 0; i < config.datacenter.hosts.size(); ++i) {
    if (i % 2 == 1) {
      config.datacenter.hosts[i].reliability = 0.95 + 0.04 * (i % 3) / 2.0;
    }
  }
  config.datacenter.inject_failures = true;
  config.datacenter.mean_repair_s = 2 * sim::kHour;
  config.datacenter.checkpoint.enabled = true;
  config.datacenter.checkpoint.period_s = 1800;
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB-full";
  config.horizon_s = 30 * sim::kDay;
  if (with_faults) {
    config.faults = faults::parse_fault_plan(
        "migrate.fail=0.08,create.fail=0.03,create.hang=0.01,"
        "power_on.fail=0.02,lemon=3:8");
  }
  return experiments::run_experiment(jobs, std::move(config));
}

int check_acceptance(const experiments::RunResult& chaos) {
  int bad = 0;
  const auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      bad = 1;
    }
  };
  require(chaos.jobs_finished == chaos.jobs_submitted && !chaos.hit_horizon,
          "all jobs finish despite the injected faults");
  require(chaos.faults_injected > 0, "faults were actually injected");
  require(chaos.report.retries > 0, "retry counter is nonzero");
  require(chaos.report.rollbacks > 0, "rollback counter is nonzero");
  require(chaos.report.quarantines > 0, "quarantine counter is nonzero");
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);

  workload::SyntheticConfig wl;
  wl.seed = bench::kSeed;
  wl.span_seconds = 2 * sim::kDay;
  wl.mean_jobs_per_hour = 4;
  wl.max_fault_tolerance = 0.02;
  const auto jobs = workload::generate(wl);

  const bool smoke = args.get_bool("smoke", false);
  args.warn_unrecognized();
  const auto chaos = run_drill(jobs, /*with_faults=*/true);
  if (smoke) {
    std::printf("%s\n", chaos.report.robustness_to_string().c_str());
    std::printf("jobs %zu/%zu, %llu injected faults\n", chaos.jobs_finished,
                chaos.jobs_submitted,
                static_cast<unsigned long long>(chaos.faults_injected));
    return check_acceptance(chaos);
  }

  const auto calm = run_drill(jobs, /*with_faults=*/false);
  support::TextTable table;
  table.header(
      {"scenario", "work / on", "CPU h", "kWh", "S(%)", "delay", "migr"});
  table.add_row(bench::report_row("no injected faults", calm.report,
                                  /*with_lambda=*/false,
                                  /*with_migrations=*/true));
  table.add_row(bench::report_row("chaos + recovery", chaos.report,
                                  /*with_lambda=*/false,
                                  /*with_migrations=*/true));
  std::printf("%s\n", table.render().c_str());
  std::printf("chaos run: %s\n", chaos.report.robustness_to_string().c_str());
  std::printf("jobs %zu/%zu (calm %zu/%zu), %llu injected faults\n",
              chaos.jobs_finished, chaos.jobs_submitted, calm.jobs_finished,
              calm.jobs_submitted,
              static_cast<unsigned long long>(chaos.faults_injected));
  return check_acceptance(chaos);
}
