// Figure 1: simulator validation.
//
// The paper validates the simulator by running a 1300 s workload of seven
// tasks ("the most typical situations ... in a real cloud execution") on a
// real node and on the simulator, then comparing power: real total
// 99.9 +/- 1.8 Wh vs simulated 97.5 Wh (-2.4 %), instantaneous error
// 8.62 +/- 8.06 W.
//
// We do not have their physical testbed, so the "real" side is a
// fine-grained reference model (see DESIGN.md substitutions): the same
// seven tasks replayed with 1 Hz sampling, measurement noise (the paper's
// meter resolution/latency), short power spikes at VM creation, and load
// wobble around each task's nominal CPU — the phenomena the coarse
// event-driven simulator deliberately ignores. The bench reproduces the
// *methodology*: total-energy error within a few percent while the
// instantaneous traces differ.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "datacenter/datacenter.hpp"
#include "sim/simulator.hpp"
#include "support/csv.hpp"
#include "support/distributions.hpp"

namespace {

using namespace easched;

struct Task {
  double start_s;
  double duration_s;
  double cpu_pct;
};

// Seven tasks covering the typical situations: a lone task, overlapping
// pairs, a burst of small tasks, a heavy 4-core task, and a trailing one.
const std::vector<Task> kTasks = {
    {20, 260, 100},  {120, 300, 200}, {300, 180, 100}, {480, 220, 50},
    {520, 380, 300}, {720, 150, 100}, {1000, 200, 200},
};
constexpr double kHorizon = 1300;

/// Event-driven simulator run: one host, tasks become VMs.
std::vector<double> simulated_trace(double* total_wh) {
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::medium()};
  config.hosts[0].creation_cost_s = 5;  // the validation node is warm
  config.seed = 3;
  datacenter::Datacenter dc(simulator, config, recorder);

  for (const auto& t : kTasks) {
    workload::Job job;
    job.submit = t.start_s;
    job.dedicated_seconds = t.duration_s;
    job.cpu_pct = t.cpu_pct;
    job.mem_mb = 128;
    simulator.at(t.start_s, [&dc, job] {
      datacenter::Datacenter& d = dc;
      const auto v = d.admit_job(job);
      d.place(v, 0);
    });
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(kHorizon));
  for (double t = 0; t < kHorizon; t += 1.0) {
    simulator.run_until(t);
    samples.push_back(recorder.watts.host_current(0));
  }
  simulator.run_until(kHorizon);
  *total_wh = recorder.watts.total_integral(kHorizon) / 3600.0;
  return samples;
}

/// Fine-grained reference ("real testbed") trace at 1 Hz.
std::vector<double> reference_trace(double* total_wh) {
  support::Rng rng{4242};
  const datacenter::PowerModel power = datacenter::PowerModel::table1();
  std::vector<double> samples;
  double sum_w = 0;
  for (double t = 0; t < kHorizon; t += 1.0) {
    double cpu = 0;
    double spike = 0;
    for (const auto& task : kTasks) {
      if (t >= task.start_s && t < task.start_s + task.duration_s) {
        // Real tasks wobble around their nominal CPU consumption.
        cpu += task.cpu_pct * (1.0 + 0.08 * support::normal01(rng));
      }
      // VM creation causes a short dom0 spike before the task starts.
      if (t >= task.start_s - 5 && t < task.start_s) spike = 60;
    }
    cpu = std::min(std::max(cpu + spike, 0.0), 400.0);
    const double noise = 1.5 * support::normal01(rng);  // meter noise
    samples.push_back(power.watts_on(cpu, 400.0) + noise);
    sum_w += samples.back();
  }
  *total_wh = sum_w / 3600.0;
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Figure 1 - simulator validation (1300 s, 7 tasks)",
      "real 99.9 +/- 1.8 Wh vs simulated 97.5 Wh (-2.4 %); instantaneous "
      "error 8.62 W (sigma 8.06); totals match, instants differ");

  double sim_wh = 0, ref_wh = 0;
  const auto sim_trace = simulated_trace(&sim_wh);
  const auto ref_trace = reference_trace(&ref_wh);

  double err_sum = 0, err_sq = 0;
  for (std::size_t i = 0; i < sim_trace.size(); ++i) {
    const double e = std::abs(sim_trace[i] - ref_trace[i]);
    err_sum += e;
    err_sq += e * e;
  }
  const double n = static_cast<double>(sim_trace.size());
  const double mean_err = err_sum / n;
  const double sd_err = std::sqrt(std::max(err_sq / n - mean_err * mean_err, 0.0));
  const double total_err_pct = 100.0 * (sim_wh - ref_wh) / ref_wh;

  std::printf("reference (\"real\") total: %.1f Wh\n", ref_wh);
  std::printf("simulated total:          %.1f Wh  (%+.1f %%)\n", sim_wh,
              total_err_pct);
  std::printf("instantaneous error:      %.2f W (sigma %.2f)\n\n", mean_err,
              sd_err);

  // Dump the two traces as CSV when asked (for plotting Figure 1).
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    support::CsvWriter csv(std::cout);
    csv.row({"t_s", "real_w", "simulated_w"});
    for (std::size_t i = 0; i < sim_trace.size(); ++i) {
      csv.numeric_row({static_cast<double>(i), ref_trace[i], sim_trace[i]});
    }
  }

  std::printf("shape check: |total error| < 5 %% (paper: 2.4 %%) -> %s\n",
              std::abs(total_err_pct) < 5.0 ? "PASS" : "FAIL");
  std::printf("shape check: instantaneous error well above total error, "
              "as in the paper -> %s\n",
              mean_err > std::abs(total_err_pct) ? "PASS" : "FAIL");
  return std::abs(total_err_pct) < 5.0 ? 0 : 1;
}
