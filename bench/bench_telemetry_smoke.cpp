// Telemetry overhead + determinism check: the live telemetry plane must be
// free when not enabled, and must not perturb the simulation when it is.
//
// Mirrors bench_attribution_smoke's interleaved-repeat methodology:
//   baseline   — no Observability bundle (recorder.obs == null)
//   disabled   — bundle attached, telemetry not enabled (what every run
//                pays for the plane existing: one null check in the runner)
//   sampled    — telemetry enabled at the default 60 s cadence with an
//                in-memory sink and an alert rule (the paid path, reported
//                for context; no budget enforced on it)
//
// `--smoke` (the `bench_telemetry_smoke` ctest entry) exits non-zero
// unless (a) the disabled run stays bit-identical to the baseline, (b) the
// median paired delta stays within 2% of the baseline time (+ absolute
// slack for timer jitter), and (c) the sampled run's simulation outcome is
// bit-identical to the baseline — sampling observes, never steers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry/telemetry.hpp"
#include "support/cli.hpp"

namespace {

using namespace easched;

workload::Workload overhead_workload() {
  workload::SyntheticConfig c;
  c.seed = bench::kSeed;
  c.span_seconds = 7.0 * sim::kDay;
  c.mean_jobs_per_hour = 25;
  return workload::generate(c);
}

experiments::RunConfig overhead_config(obs::Observability* bundle) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(8, 20, 12);
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB";
  config.horizon_s = 90 * sim::kDay;
  config.obs = bundle;
  return config;
}

struct Timed {
  std::vector<double> ms;
  experiments::RunResult result;
};

void time_once(Timed& out, const workload::Workload& jobs,
               obs::Observability* bundle) {
  const auto begin = std::chrono::steady_clock::now();
  auto result = experiments::run_experiment(jobs, overhead_config(bundle));
  const auto end = std::chrono::steady_clock::now();
  out.ms.push_back(
      std::chrono::duration<double, std::milli>(end - begin).count());
  out.result = std::move(result);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2]
                                  : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const int repeats = static_cast<int>(args.get_int("repeats", 7));
  args.warn_unrecognized();

  const auto jobs = overhead_workload();
  std::printf(
      "telemetry overhead: %zu jobs, median of %d interleaved runs each\n",
      jobs.size(), repeats);
#if !EASCHED_TELEMETRY_ENABLED
  std::printf("  (EASCHED_TELEMETRY=OFF: sampled run takes no samples)\n");
#endif

  {
    Timed warmup;  // untimed: pays first-touch allocator/page-cache costs
    time_once(warmup, jobs, nullptr);
  }

  Timed baseline, disabled, sampled;
  obs::Observability disabled_bundle;  // attached, telemetry not enabled
  std::uint64_t samples_taken = 0;
  for (int i = 0; i < repeats; ++i) {
    time_once(baseline, jobs, nullptr);
    time_once(disabled, jobs, &disabled_bundle);
    // The plane's seq counter and ring persist across runs, so the sampled
    // configuration gets a fresh bundle each repeat.
    obs::Observability sampled_bundle;
    sampled_bundle.telemetry.enable();
    sampled_bundle.telemetry.add_sink(std::make_unique<obs::MemorySink>());
    sampled_bundle.telemetry.set_alert_rules(
        obs::parse_alert_rules("queue_depth>50 for=600"));
    time_once(sampled, jobs, &sampled_bundle);
    samples_taken = sampled_bundle.telemetry.samples_taken();
  }

  std::vector<double> disabled_delta, sampled_delta;
  for (int i = 0; i < repeats; ++i) {
    disabled_delta.push_back(disabled.ms[i] - baseline.ms[i]);
    sampled_delta.push_back(sampled.ms[i] - baseline.ms[i]);
  }
  const double base_ms = median(baseline.ms);
  const double disabled_ms = median(disabled_delta);
  const double sampled_ms = median(sampled_delta);

  std::printf("  baseline    %8.1f ms\n", base_ms);
  std::printf("  disabled    %+8.1f ms  (%+.2f%%)\n", disabled_ms,
              100.0 * disabled_ms / base_ms);
  std::printf("  sampled     %+8.1f ms  (%+.2f%%)  [%llu samples]\n",
              sampled_ms, 100.0 * sampled_ms / base_ms,
              static_cast<unsigned long long>(samples_taken));

  if (!smoke) return 0;

  int bad = 0;
  const auto require = [&bad](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      bad = 1;
    }
  };
  require(disabled.result.events_dispatched ==
                  baseline.result.events_dispatched &&
              disabled.result.report.energy_kwh ==
                  baseline.result.report.energy_kwh &&
              disabled.result.report.migrations ==
                  baseline.result.report.migrations,
          "disabled-telemetry run is bit-identical to the baseline");
  require(disabled_bundle.telemetry.samples_taken() == 0,
          "disabled plane took no samples");
  // The sampling periodic adds events to the queue but must never change
  // what the simulation computes.
  require(sampled.result.report.energy_kwh ==
                  baseline.result.report.energy_kwh &&
              sampled.result.report.migrations ==
                  baseline.result.report.migrations &&
              sampled.result.report.satisfaction ==
                  baseline.result.report.satisfaction,
          "sampling does not perturb the simulation");
#if EASCHED_TELEMETRY_ENABLED
  require(samples_taken > 0, "enabled plane sampled the run");
#endif
  // <= 2 % relative, with 5 ms of absolute slack against timer jitter.
  require(disabled_ms <= base_ms * 0.02 + 5.0,
          "disabled-telemetry overhead within 2% of baseline");
  if (bad == 0) std::printf("SMOKE OK\n");
  return bad;
}
