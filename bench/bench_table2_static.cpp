// Table II: scheduling results of policies without migration.
//
// Random (RD), Round Robin (RR), Backfilling (BF) and the basic score-based
// configuration SB0 (= Preq + Pres + Ppwr, no migration), all at
// lambda = 30-90 on the week workload.
//
// Paper rows (Work/ON, CPU h, Pwr, S %, delay %):
//   RD   24.3/41.7  14597.2  1952.1  33.2  474.5
//   RR   23.5/51.9  11844.2  2321.0  60.4  338.4
//   BF   10.1/22.2   6055.3  1007.3  98.0   10.4
//   SB0   9.9/22.4   6055.3  1016.3  98.2   10.4
// Shape: non-consolidating policies (RD, RR) burn far more energy and CPU
// and violate many SLAs; BF and SB0 are nearly identical.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Table II - static allocation (no migration), lambda = 30-90",
      "RD/RR: poor energy efficiency + many SLA violations; BF strong; "
      "SB0 behaves like BF");

  const auto jobs = bench::week_workload();
  support::TextTable table;
  table.header(bench::table_header(false, false));

  metrics::RunReport rd, rr, bf, sb0;
  for (const char* p : {"RD", "RR", "BF", "SB0"}) {
    const auto res = bench::run_week(jobs, p);
    table.add_row(bench::report_row(p, res.report));
    if (std::string(p) == "RD") rd = res.report;
    if (std::string(p) == "RR") rr = res.report;
    if (std::string(p) == "BF") bf = res.report;
    if (std::string(p) == "SB0") sb0 = res.report;
  }
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"RD has the worst satisfaction", rd.satisfaction < rr.satisfaction &&
                                            rd.satisfaction < bf.satisfaction},
      {"RD and RR consume far more energy than BF (>30 % more)",
       rd.energy_kwh > 1.3 * bf.energy_kwh &&
           rr.energy_kwh > 1.3 * bf.energy_kwh},
      {"RD and RR waste CPU vs BF (contention)",
       rd.cpu_hours > 1.2 * bf.cpu_hours && rr.cpu_hours > 1.2 * bf.cpu_hours},
      {"BF and SB0 nearly identical (within 3 % energy)",
       std::abs(bf.energy_kwh - sb0.energy_kwh) < 0.03 * bf.energy_kwh},
      {"BF and SB0 keep satisfaction high (> 95 %)",
       bf.satisfaction > 95 && sb0.satisfaction > 95},
      {"RD/RR keep many more nodes online than BF",
       rd.avg_online > 1.1 * bf.avg_online &&
           rr.avg_online > 1.1 * bf.avg_online},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
