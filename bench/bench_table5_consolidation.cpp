// Table V: score-based scheduling with different consolidation costs
// (Cempty, Cfill): (0, 40) never penalises empty hosts, (20, 40) is the
// evaluation default, (60, 100) is aggressive.
//
// Paper rows (Ce, Cf, Work/ON, CPU, Pwr, S, delay, Mig):
//    0  40  10.4/22.9  6055.2  1036.4  99.3   8.6    0
//   20  40   9.7/21.0  6055.8   956.4  99.1   9.0   87
//   60 100   9.3/22.0  6057.8   998.8  97.7  11.2  432
// Shape: Ce = 0 performs no migrations at all (no reward to empty a host);
// the balanced setting consolidates best; the aggressive one migrates an
// order of magnitude more, hurting both S and energy.
#include <cstdio>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Table V - consolidation parameters (Cempty, Cfill), SB, lambda 30-90",
      "Ce=0: no migrations, worst power; (20,40): balanced, best; "
      "(60,100): migration storm, S and power degrade");

  const auto jobs = bench::week_workload();
  support::TextTable table;
  std::vector<std::string> head{"Ce", "Cf"};
  const auto base = bench::table_header(false, true);
  head.insert(head.end(), base.begin() + 1, base.end());
  table.header(head);

  struct Variant {
    double ce, cf;
  };
  const Variant variants[] = {{0, 40}, {20, 40}, {60, 100}};
  // Each task's factory builds its custom-cost policy on the worker thread;
  // the three variants run concurrently under EASCHED_SWEEP_THREADS.
  experiments::SweepRunner sweep;
  std::vector<experiments::SweepTask> tasks;
  for (const auto& v : variants) {
    tasks.push_back({&jobs, [ce = v.ce, cf = v.cf] {
                       auto config = bench::week_run_config("SB", 0.30, 0.90);
                       auto sb = core::ScoreBasedConfig::sb();
                       sb.params.c_empty = ce;
                       sb.params.c_fill = cf;
                       config.policy_instance =
                           std::make_unique<core::ScoreBasedPolicy>(sb);
                       return config;
                     }});
  }
  const auto results = sweep.run(std::move(tasks));

  metrics::RunReport reports[3];
  for (int i = 0; i < 3; ++i) {
    const auto& v = variants[i];
    reports[i] = results[static_cast<std::size_t>(i)].report;
    auto row = bench::report_row("", reports[i], false, true);
    row.erase(row.begin());
    row.insert(row.begin(), {support::TextTable::num(v.ce, 0),
                             support::TextTable::num(v.cf, 0)});
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"Ce=0 performs (almost) no migrations (paper: none)",
       reports[0].migrations <= 5},
      {"balanced (20,40) uses less power than Ce=0",
       reports[1].energy_kwh < reports[0].energy_kwh},
      {"aggressive (60,100) migrates much more than balanced (>= 1.5x)",
       reports[2].migrations * 2 >= 3 * reports[1].migrations},
      {"aggressive's churn degrades job delay vs balanced",
       reports[2].delay_pct >= reports[1].delay_pct},
      {"aggressive satisfaction <= balanced satisfaction",
       reports[2].satisfaction <= reports[1].satisfaction + 0.2},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  std::printf(
      "documented divergence: the paper additionally reports *worse* power "
      "for (60,100) (998.8 vs 956.4 kWh); our simulated migrations are "
      "cheap enough that the extra moves still consolidate profitably — "
      "see EXPERIMENTS.md.\n");
  return all ? 0 : 1;
}
