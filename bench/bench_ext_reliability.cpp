// Extension A2: reliability (Pfault) + failure injection + checkpointing.
//
// The paper defines the Pfault penalty (section III-A.6) and the recovery
// actuator ("the new executing node tries to recover it from the more
// recent checkpoint", III-C) but leaves their evaluation to future work.
// This bench performs that evaluation: a fleet where 40 % of nodes are
// flaky (reliability 0.95-0.99); we compare the reliability-blind SB
// against SB + Pfault, with and without checkpointing.
//
// Expected shape: Pfault steers VMs to reliable nodes -> fewer VM restarts
// and better satisfaction; checkpointing recovers progress -> less CPU
// re-execution after the failures that still happen.
#include <cstdio>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"

namespace {

using namespace easched;

struct Outcome {
  metrics::RunReport report;
  std::uint64_t restarts = 0;
};

Outcome run_variant(const workload::Workload& jobs, bool use_fault,
                    bool checkpointing) {
  experiments::RunConfig config;
  config.datacenter = experiments::evaluation_datacenter(bench::kSeed);
  for (std::size_t i = 0; i < config.datacenter.hosts.size(); ++i) {
    if (i % 5 < 2) {  // 40 % of the fleet is flaky
      config.datacenter.hosts[i].reliability = 0.95 + 0.02 * (i % 3);
    }
  }
  config.datacenter.inject_failures = true;
  config.datacenter.mean_repair_s = 2 * sim::kHour;
  config.datacenter.checkpoint.enabled = checkpointing;
  config.datacenter.checkpoint.period_s = 1800;

  auto sb = core::ScoreBasedConfig::sb();
  sb.params.use_fault = use_fault;
  sb.label = use_fault ? "SB+fault" : "SB";
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(sb);
  config.driver.power.lambda_min = 0.30;
  config.driver.power.lambda_max = 0.90;
  config.horizon_s = 60 * sim::kDay;  // safety net

  const auto res = experiments::run_experiment(jobs, std::move(config));
  return {res.report, res.report.failures};
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - reliability penalty Pfault + checkpoint recovery",
      "future work of the paper, implemented here: Pfault avoids flaky "
      "nodes; checkpoints preserve progress across failures");

  workload::SyntheticConfig wl;
  wl.seed = bench::kSeed;
  wl.span_seconds = 3 * sim::kDay;
  wl.mean_jobs_per_hour = 11.2;
  wl.max_fault_tolerance = 0.01;
  const auto jobs = workload::generate(wl);

  support::TextTable table;
  auto head = bench::table_header(false, false);
  head[0] = "variant";
  head.push_back("failures");
  table.header(head);

  const Outcome blind = run_variant(jobs, false, false);
  const Outcome fault = run_variant(jobs, true, false);
  const Outcome fault_ckpt = run_variant(jobs, true, true);

  auto add = [&](const char* label, const Outcome& o) {
    auto row = bench::report_row(label, o.report);
    row.push_back(std::to_string(o.report.failures));
    table.add_row(row);
  };
  add("SB (blind)", blind);
  add("SB + Pfault", fault);
  add("SB + Pfault + ckpt", fault_ckpt);
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"Pfault does not reduce satisfaction",
       fault.report.satisfaction >= blind.report.satisfaction - 0.3},
      {"Pfault reduces delay or failures felt by jobs",
       fault.report.delay_pct <= blind.report.delay_pct + 0.3},
      {"checkpointing does not hurt satisfaction",
       fault_ckpt.report.satisfaction >= fault.report.satisfaction - 0.5},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
