// Extension A3: dynamic SLA enforcement (section III-A.5).
//
// The paper describes two mechanisms it defers to future work: raising the
// resources of a VM whose SLA is being violated during execution, and the
// PSLA matrix term that makes violating placements unattractive. This bench
// evaluates both.
//
// Part 1 — in-execution recovery. The mechanism can only pay off where VMs
// are actually slowed down in-flight, i.e. on CPU-oversubscribed hosts; we
// therefore run the contention-prone Random policy on a 30-node fleet near
// saturation and toggle the SLA monitor + credit-weight boost. Expected:
// boosted at-risk VMs reclaim share from co-residents with slack, raising
// overall satisfaction.
//
// Part 2 — placement-time steering (PSLA in the score matrix) under the
// full score-based policy. SB never oversubscribes, so there is little for
// enforcement to recover; the check is that PSLA steering keeps
// satisfaction in the same band and every job still completes (the
// hopeless-VM starvation case is what the soft-infinity in PSLA guards).
#include <cstdio>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"

namespace {

using namespace easched;

experiments::RunResult run_variant(const workload::Workload& jobs,
                                   const std::string& policy, bool psla,
                                   bool boost) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(5, 15, 10);
  config.datacenter.seed = bench::kSeed;
  if (policy == "SB") {
    auto sb = core::ScoreBasedConfig::sb();
    sb.params.use_sla = psla;
    config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(sb);
  } else {
    config.policy = policy;
  }
  config.driver.sla_alarms = psla;
  config.driver.dynamic_sla_boost = boost;
  config.horizon_s = 60 * sim::kDay;
  return experiments::run_experiment(jobs, std::move(config));
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - dynamic SLA enforcement (PSLA + credit-weight boost)",
      "future work of the paper, implemented here: violation alarms boost "
      "at-risk VMs' shares; PSLA steers placements away from violating "
      "hosts");

  workload::SyntheticConfig wl;
  wl.seed = bench::kSeed;
  wl.span_seconds = 2 * sim::kDay;
  wl.mean_jobs_per_hour = 9;   // near saturation for the 30-node fleet
  wl.batch_mean = 5;
  wl.deadline_factor_lo = 1.2;
  wl.deadline_factor_hi = 1.8;
  const auto jobs = workload::generate(wl);

  support::TextTable table;
  auto head = bench::table_header(false, false);
  head[0] = "variant";
  table.header(head);

  const auto rd_off = run_variant(jobs, "RD", false, false);
  const auto rd_boost = run_variant(jobs, "RD", false, true);
  const auto sb_off = run_variant(jobs, "SB", false, false);
  const auto sb_full = run_variant(jobs, "SB", true, true);

  table.add_row(bench::report_row("RD, monitor off", rd_off.report));
  table.add_row(bench::report_row("RD + weight boost", rd_boost.report));
  table.add_row(bench::report_row("SB, monitor off", sb_off.report));
  table.add_row(bench::report_row("SB + PSLA + boost", sb_full.report));
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"weight boost raises satisfaction on the contended fleet (>= 1 pp)",
       rd_boost.report.satisfaction >= rd_off.report.satisfaction + 1.0},
      {"PSLA steering keeps SB satisfaction in band (within 1.5 pp)",
       sb_full.report.satisfaction >= sb_off.report.satisfaction - 1.5},
      {"no starvation: every job finishes under full enforcement",
       sb_full.jobs_finished == sb_full.jobs_submitted &&
           !sb_full.hit_horizon},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  std::printf(
      "finding: on the never-oversubscribed score-based fleet enforcement "
      "has little to recover (S %.1f vs %.1f); its value concentrates where "
      "contention slows VMs mid-flight (S %.1f vs %.1f under RD).\n",
      sb_full.report.satisfaction, sb_off.report.satisfaction,
      rd_boost.report.satisfaction, rd_off.report.satisfaction);
  return all ? 0 : 1;
}
