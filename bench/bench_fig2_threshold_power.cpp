// Figure 2: datacenter power consumption as a function of the turn-on/off
// thresholds (lambda_min, lambda_max), score-based policy, week workload.
//
// Paper shape: power falls as lambda_max grows (wait longer before adding
// nodes) and as lambda_min grows (shut idle nodes down earlier); the
// surface spans roughly 500-3000 kWh across the grid.
//
// Usage: bench_fig2_threshold_power [--fast] [--csv]
//   --fast  coarser 3x3 grid (CI-friendly)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  bench::print_banner(
      "Figure 2 - power vs turn-on/off thresholds (SB policy)",
      "power decreases with higher lambda_max and higher lambda_min; "
      "dynamic turn on/off dramatically increases energy efficiency");

  const auto jobs = bench::week_workload();
  const double step = args.get_bool("fast", false) ? 0.40 : 0.20;
  args.warn_unrecognized();

  std::vector<double> lmins, lmaxs;
  for (double l = 0.10; l <= 0.901; l += step) lmins.push_back(l);
  for (double l = 0.20; l <= 1.001; l += step) lmaxs.push_back(l);

  support::TextTable table;
  std::vector<std::string> head{"lmin\\lmax"};
  for (double lx : lmaxs) head.push_back(support::TextTable::num(lx * 100, 0));
  table.header(head);

  // Fan the feasible grid points across EASCHED_SWEEP_THREADS workers;
  // results come back in submission (row-major grid) order, so the table
  // below is byte-identical for any thread count.
  experiments::SweepRunner sweep;
  std::vector<experiments::SweepTask> tasks;
  for (double ln : lmins) {
    for (double lx : lmaxs) {
      if (lx > ln) tasks.push_back(bench::week_task(jobs, "SB", ln, lx));
    }
  }
  const auto results = sweep.run(std::move(tasks));

  std::vector<std::vector<double>> surface;
  double corner_hi = 0, corner_lo = 0;
  std::size_t next = 0;
  for (double ln : lmins) {
    std::vector<std::string> row{support::TextTable::num(ln * 100, 0)};
    std::vector<double> srow;
    for (double lx : lmaxs) {
      if (lx <= ln) {
        row.push_back("-");
        srow.push_back(-1);
        continue;
      }
      const auto& res = results[next++];
      row.push_back(support::TextTable::num(res.report.energy_kwh, 0));
      srow.push_back(res.report.energy_kwh);
      if (ln == lmins.front() && lx == lmaxs[1]) corner_hi = res.report.energy_kwh;
      if (ln == lmins.back() && lx == lmaxs.back()) corner_lo = res.report.energy_kwh;
    }
    table.add_row(row);
    surface.push_back(srow);
  }
  std::printf("Power consumption (kWh):\n%s\n", table.render().c_str());

  if (args.get_bool("csv", false)) {
    support::CsvWriter csv(std::cout);
    csv.row({"lambda_min", "lambda_max", "kwh"});
    for (std::size_t i = 0; i < lmins.size(); ++i) {
      for (std::size_t j = 0; j < lmaxs.size(); ++j) {
        if (surface[i][j] >= 0)
          csv.numeric_row({lmins[i], lmaxs[j], surface[i][j]});
      }
    }
  }

  const bool pass = corner_lo < corner_hi;
  std::printf("shape check: aggressive thresholds (high lmin, high lmax) "
              "use less power than lazy ones -> %s (%.0f vs %.0f kWh)\n",
              pass ? "PASS" : "FAIL", corner_lo, corner_hi);
  return pass ? 0 : 1;
}
