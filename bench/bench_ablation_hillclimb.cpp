// Ablation A1: the hill-climbing iteration limit (Algorithm 1).
//
// The paper bounds the optimization at O(#Hosts * #VMs) * C and argues the
// greedy search finds a suboptimal solution "much faster and cheaper than
// evaluating all possible configurations". This ablation sweeps the move
// limit: a tiny budget (1 move/round) should degrade consolidation, while
// the default budget saturates quickly — showing the greedy search needs
// only a handful of moves per round.
#include <cstdio>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Ablation - Algorithm 1 iteration (move) limit",
      "hill climbing converges in a few moves per round; starving it "
      "degrades placement, enlarging it buys nothing");

  const auto jobs = bench::week_workload();
  support::TextTable table;
  auto head = bench::table_header(false, true);
  head[0] = "max moves";
  table.header(head);

  const int limits[] = {1, 2, 4, 16, 64, 256};
  double kwh[6] = {};
  double sat[6] = {};
  int i = 0;
  for (int limit : limits) {
    auto config = core::ScoreBasedConfig::sb();
    config.max_moves = limit;
    auto policy = std::make_unique<core::ScoreBasedPolicy>(config);
    const auto res =
        bench::run_week(jobs, "SB", 0.30, 0.90, std::move(policy));
    kwh[i] = res.report.energy_kwh;
    sat[i] = res.report.satisfaction;
    table.add_row(
        bench::report_row(std::to_string(limit), res.report, false, true));
    ++i;
  }
  std::printf("%s\n", table.render().c_str());

  // A 1-move budget forces queued VMs to wait extra rounds; service should
  // not be better than with the saturated budget, and the saturated budgets
  // should agree with each other.
  const bool saturates = std::abs(kwh[4] - kwh[5]) < 0.02 * kwh[5] &&
                         std::abs(sat[4] - sat[5]) < 1.0;
  std::printf("shape check: budget saturates by 64 moves/round -> %s\n",
              saturates ? "PASS" : "FAIL");
  const bool starved_not_better = sat[0] <= sat[5] + 0.5;
  std::printf("shape check: starved budget is no better on S -> %s\n",
              starved_not_better ? "PASS" : "FAIL");
  return (saturates && starved_not_better) ? 0 : 1;
}
