// Ablation A10: virtual-host queue ordering (FIFO vs EDF vs SJF).
//
// The paper's queue is FIFO. Under burst pressure, who wins the scarce
// capacity matters for the S metric: deadline-aware (EDF) ordering should
// recover satisfaction that FIFO leaves on the table, with SJF in between.
// Run on a deliberately small fleet with tight deadlines so the queue
// actually bites.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace easched;

metrics::RunReport run_order(const workload::Workload& jobs,
                             sched::QueueOrder order) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(4, 12, 8);
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB";
  config.driver.queue_order = order;
  config.horizon_s = 60 * sim::kDay;
  return experiments::run_experiment(jobs, std::move(config)).report;
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Ablation - virtual-host queue ordering under burst pressure",
      "EDF recovers satisfaction FIFO loses in bursts; energy is "
      "essentially unchanged (ordering moves who waits, not how much runs)");

  workload::SyntheticConfig wl;
  wl.seed = bench::kSeed;
  wl.span_seconds = 3 * sim::kDay;
  wl.mean_jobs_per_hour = 11;  // heavy for the 24-node fleet
  wl.batch_mean = 9;
  wl.deadline_factor_lo = 1.15;
  wl.deadline_factor_hi = 1.6;
  const auto jobs = workload::generate(wl);

  const auto fifo = run_order(jobs, sched::QueueOrder::kFifo);
  const auto edf = run_order(jobs, sched::QueueOrder::kEdf);
  const auto sjf = run_order(jobs, sched::QueueOrder::kSjf);

  support::TextTable table;
  auto head = bench::table_header(false, false);
  head[0] = "queue order";
  table.header(head);
  table.add_row(bench::report_row("FIFO", fifo));
  table.add_row(bench::report_row("EDF", edf));
  table.add_row(bench::report_row("SJF", sjf));
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"EDF satisfaction >= FIFO satisfaction",
       edf.satisfaction >= fifo.satisfaction - 0.05},
      {"energy is roughly ordering-insensitive (within 5 %)",
       std::abs(edf.energy_kwh - fifo.energy_kwh) < 0.05 * fifo.energy_kwh &&
           std::abs(sjf.energy_kwh - fifo.energy_kwh) <
               0.05 * fifo.energy_kwh},
      {"all orderings complete the workload",
       fifo.jobs_finished == jobs.size() && edf.jobs_finished == jobs.size() &&
           sjf.jobs_finished == jobs.size()},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
