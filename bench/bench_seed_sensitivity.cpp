// Robustness check: the headline result across independent workloads.
//
// The paper evaluates one week of one trace. A reproduction should show
// the 15 %-vs-Backfilling claim is not an artifact of one workload draw:
// here the Table-IV comparison is repeated over several synthetic-workload
// seeds and the savings distribution is reported (mean +- sd, min..max).
#include <cstdio>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "workload/lublin_feitelson.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Robustness - headline savings across workload seeds",
      "SB@40-90 vs BF@30-90 should save a consistent double-digit "
      "percentage for every workload draw, not just the default seed");

  support::TextTable table;
  table.header({"seed", "BF (kWh)", "DBF (kWh)", "SB@40-90 (kWh)",
                "vs BF (%)", "vs DBF (%)", "SB S (%)"});

  std::vector<double> vs_bf, vs_dbf, sb_sat;
  const std::uint64_t seeds[] = {20071001, 1, 2, 3, 4};

  // Six workloads: the Grid-like week under five seeds, plus a different
  // workload *model* entirely (Lublin-Feitelson rigid jobs). They live in a
  // stable vector because sweep tasks point into it.
  std::vector<std::string> labels;
  std::vector<workload::Workload> workloads;
  workloads.reserve(std::size(seeds) + 1);
  for (std::uint64_t seed : seeds) {
    labels.push_back(std::to_string(seed));
    workloads.push_back(bench::week_workload(seed));
  }
  {
    workload::LublinFeitelsonConfig lf;
    lf.mean_jobs_per_hour = 16;  // fills the fleet like the Grid week
    labels.push_back("LF model");
    workloads.push_back(workload::generate_lublin_feitelson(lf));
  }

  // All 18 runs (6 workloads x {BF, DBF, SB}) fan out through one sweep;
  // results come back grouped per workload in submission order.
  experiments::SweepRunner sweep;
  std::vector<experiments::SweepTask> tasks;
  for (const auto& jobs : workloads) {
    tasks.push_back(bench::week_task(jobs, "BF", 0.30, 0.90));
    tasks.push_back(bench::week_task(jobs, "DBF", 0.30, 0.90));
    tasks.push_back(bench::week_task(jobs, "SB", 0.40, 0.90));
  }
  const auto results = sweep.run(std::move(tasks));

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& bf = results[3 * i].report;
    const auto& dbf = results[3 * i + 1].report;
    const auto& sb = results[3 * i + 2].report;
    const double cut_bf = 100.0 * (1.0 - sb.energy_kwh / bf.energy_kwh);
    const double cut_dbf = 100.0 * (1.0 - sb.energy_kwh / dbf.energy_kwh);
    vs_bf.push_back(cut_bf);
    vs_dbf.push_back(cut_dbf);
    sb_sat.push_back(sb.satisfaction);
    table.add_row({labels[i], support::TextTable::num(bf.energy_kwh, 1),
                   support::TextTable::num(dbf.energy_kwh, 1),
                   support::TextTable::num(sb.energy_kwh, 1),
                   support::TextTable::num(cut_bf, 1),
                   support::TextTable::num(cut_dbf, 1),
                   support::TextTable::num(sb.satisfaction, 1)});
  }

  std::printf("%s\n", table.render().c_str());

  const auto bf_summary = support::summarize(vs_bf);
  const auto dbf_summary = support::summarize(vs_dbf);
  const auto sat_summary = support::summarize(sb_sat);
  std::printf("savings vs BF:  %.1f +- %.1f %% (min %.1f, max %.1f)\n",
              bf_summary.mean, bf_summary.stddev, bf_summary.min,
              bf_summary.max);
  std::printf("savings vs DBF: %.1f +- %.1f %% (min %.1f, max %.1f)\n",
              dbf_summary.mean, dbf_summary.stddev, dbf_summary.min,
              dbf_summary.max);

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"SB saves vs BF on every Grid-like seed (> 8 %)",
       support::summarize({vs_bf.begin(), vs_bf.end() - 1}).min > 8.0},
      {"SB saves vs BF even under the Lublin-Feitelson model (> 4 %)",
       vs_bf.back() > 4.0},
      {"mean saving vs BF in the paper's ballpark (>= 12 %)",
       support::summarize({vs_bf.begin(), vs_bf.end() - 1}).mean >= 12.0},
      {"SB saves vs DBF on every seed", dbf_summary.min > 0.0},
      {"SB keeps satisfaction >= 97 % on every seed",
       sat_summary.min >= 97.0},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
