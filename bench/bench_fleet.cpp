// Fleet-scale round timing for the cross-round incremental scheduling core
// (core/fleet.hpp): the number behind BENCH_fleet.json.
//
// Main mode. For each fleet size (default 1000/4000/10000 hosts) and churn
// level, a synthetic steady-state scenario is driven round by round: the
// fleet is prepopulated to ~95 % CPU utilization, then every 60 s round a
// fixed number of jobs finishes (their residency is sized so completions
// match arrivals) and the same number arrives into the queue. Only
// `policy.schedule()` is timed — exactly the code the incremental core
// accelerates: the host re-read, the matrix build and the hill-climb
// sweep. Both variants run the identical scenario in one process:
//
//   reference   — ScoreBasedConfig.incremental = false: every round
//                 re-reads all M hosts and eagerly rebuilds the matrix
//                 (the pre-fleet behaviour, kept as a run-time flag);
//   incremental — the cross-round FleetState path: dirty-journal re-reads,
//                 lazy static terms, capacity-pruned argmin, persistent
//                 queued-VM columns.
//
// The two action streams are compared round for round and any divergence
// is a hard failure: the speedup claim is only meaningful if the decisions
// are identical. `--json` emits the rows committed as BENCH_fleet.json
// (scripts/refresh_bench.sh).
//
// `--smoke` (the `bench_fleet_smoke` ctest entry) is the small-fleet
// non-regression gate: on the 100-node evaluation week — where dirty
// fractions are high and fleets are small, i.e. the incremental machinery
// has the least to win — the incremental run must stay behaviourally
// identical to the reference run and its median paired wall-clock delta
// must not exceed 2 % of the reference time (plus absolute slack for
// timer jitter), following the bench_resilience_smoke methodology.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"
#include "datacenter/datacenter.hpp"
#include "metrics/accumulators.hpp"
#include "sched/policy.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace {

using namespace easched;
using datacenter::HostId;
using datacenter::VmId;

constexpr double kRoundSeconds = 60;
constexpr double kUtilization = 0.95;  ///< prepopulated CPU load fraction
constexpr double kVmCpuPct = 100;
constexpr double kVmMemMb = 512;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2]
                                  : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

double mean(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return v.empty() ? 0 : sum / static_cast<double>(v.size());
}

workload::Job churn_job(support::Rng& rng, double submit, double mean_life) {
  workload::Job job;
  job.submit = submit;
  job.dedicated_seconds = rng.uniform(0.5, 1.5) * mean_life;
  job.cpu_pct = kVmCpuPct;
  job.mem_mb = kVmMemMb;
  job.deadline_factor = 10;  // SLA terms are off; keep deadlines inert
  return job;
}

/// One steady-state scenario run: timings plus the emitted action stream
/// (flattened; compared across variants for decision identity).
struct VariantRun {
  std::vector<double> round_ms;        ///< measured rounds only
  std::vector<sched::Action> actions;  ///< every action of every round
  std::uint64_t hosts_reread = 0;      ///< fleet stats (incremental only)
  std::uint64_t refreshes = 0;
};

VariantRun run_variant(std::size_t hosts, int churn, int warmup_rounds,
                       int measured_rounds, bool incremental) {
  sim::Simulator simulator;
  metrics::Recorder recorder(hosts);
  datacenter::DatacenterConfig dconf;
  dconf.hosts.assign(hosts, datacenter::HostSpec::medium());
  dconf.seed = bench::kSeed;
  dconf.duration_sigma_ratio = 0;  // deterministic operation durations
  datacenter::Datacenter dc(simulator, dconf, recorder);

  // Identically seeded in both variants: the workload draw sequence only
  // depends on round structure, which identical decisions keep identical.
  support::Rng wl_rng{bench::kSeed + hosts};
  support::Rng policy_rng{bench::kSeed};

  // Steady state by construction: population such that CPU utilization is
  // kUtilization, residency such that ~`churn` VMs finish per round.
  const double vms_per_host =
      datacenter::HostSpec::medium().cpu_capacity_pct / kVmCpuPct;
  const std::size_t population = static_cast<std::size_t>(
      static_cast<double>(hosts) * vms_per_host * kUtilization);
  const double mean_life = static_cast<double>(population) * kRoundSeconds /
                           static_cast<double>(churn);

  for (std::size_t i = 0; i < population; ++i) {
    const VmId v = dc.admit_job(churn_job(wl_rng, 0, mean_life));
    dc.place(v, static_cast<HostId>(i % hosts));
  }
  simulator.run_until(300);  // initial creations settle into Running

  core::ScoreBasedConfig cfg = core::ScoreBasedConfig::sb2();
  cfg.incremental = incremental;
  core::ScoreBasedPolicy policy(cfg);

  VariantRun out;
  std::vector<VmId> queue;
  std::vector<VmId> still_queued;
  double now = 300;
  for (int round = 0; round < warmup_rounds + measured_rounds; ++round) {
    now += kRoundSeconds;
    simulator.run_until(now);  // completions + op endings, all journaled
    for (int i = 0; i < churn; ++i) {
      queue.push_back(dc.admit_job(churn_job(wl_rng, now, mean_life)));
    }

    const sched::SchedContext ctx{dc, queue, policy_rng};
    const auto begin = std::chrono::steady_clock::now();
    const std::vector<sched::Action> actions = policy.schedule(ctx);
    const auto end = std::chrono::steady_clock::now();
    if (round >= warmup_rounds) {
      out.round_ms.push_back(
          std::chrono::duration<double, std::milli>(end - begin).count());
    }

    still_queued.assign(queue.begin(), queue.end());
    for (const sched::Action& a : actions) {
      out.actions.push_back(a);
      if (a.kind != sched::Action::Kind::kPlace) continue;
      if (!dc.placeable(a.host) || !dc.fits(a.host, a.vm)) continue;
      dc.place(a.vm, a.host);
      std::erase(still_queued, a.vm);
    }
    queue.swap(still_queued);
  }
  return out;
}

bool same_actions(const VariantRun& a, const VariantRun& b) {
  if (a.actions.size() != b.actions.size()) return false;
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    if (a.actions[i].kind != b.actions[i].kind ||
        a.actions[i].vm != b.actions[i].vm ||
        a.actions[i].host != b.actions[i].host) {
      return false;
    }
  }
  return true;
}

struct Row {
  std::size_t hosts = 0;
  int churn = 0;
  double ref_mean_ms = 0, ref_median_ms = 0;
  double inc_mean_ms = 0, inc_median_ms = 0;
  double speedup = 0;  ///< median reference / median incremental
  bool identical = false;
};

int run_main(const support::CliArgs& args, bool json) {
  std::vector<std::size_t> sizes;
  {
    // --hosts=1000,4000 limits the sweep (default 1000,4000,10000).
    std::string spec = args.get("hosts", "1000,4000,10000");
    std::replace(spec.begin(), spec.end(), ',', ' ');
    std::size_t v = 0;
    for (const char* p = spec.c_str(); std::sscanf(p, "%zu", &v) == 1;) {
      sizes.push_back(v);
      while (*p == ' ') ++p;
      while (*p != '\0' && *p != ' ') ++p;
      if (*p == '\0') break;
    }
  }
  const int rounds = static_cast<int>(args.get_int("rounds", 30));
  const int warmup = static_cast<int>(args.get_int("warmup", 10));

  std::vector<Row> rows;
  int bad = 0;
  for (const std::size_t hosts : sizes) {
    // Two churn levels: ~0.8 % and ~3 % of the fleet turning over per
    // round (dirty-set sizes bracketing a busy production round).
    const int churns[] = {std::max(4, static_cast<int>(hosts / 128)),
                          std::max(16, static_cast<int>(hosts / 32))};
    for (const int churn : churns) {
      if (!json) {
        std::fprintf(stderr, "fleet %zu hosts, churn %d/round...\n", hosts,
                     churn);
      }
      const VariantRun ref =
          run_variant(hosts, churn, warmup, rounds, /*incremental=*/false);
      const VariantRun inc =
          run_variant(hosts, churn, warmup, rounds, /*incremental=*/true);

      Row row;
      row.hosts = hosts;
      row.churn = churn;
      row.ref_mean_ms = mean(ref.round_ms);
      row.ref_median_ms = median(ref.round_ms);
      row.inc_mean_ms = mean(inc.round_ms);
      row.inc_median_ms = median(inc.round_ms);
      row.speedup = row.inc_median_ms > 0
                        ? row.ref_median_ms / row.inc_median_ms
                        : 0;
      row.identical = same_actions(ref, inc);
      rows.push_back(row);
      if (!row.identical) {
        std::fprintf(stderr,
                     "FAIL: action streams diverged at %zu hosts, churn %d\n",
                     hosts, churn);
        bad = 1;
      }
    }
  }

  if (json) {
    std::printf("{\n  \"benchmark\": \"fleet_round\",\n");
    std::printf("  \"rounds\": %d, \"warmup\": %d,\n", rounds, warmup);
    std::printf("  \"utilization\": %.2f,\n  \"rows\": [\n", kUtilization);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "    {\"hosts\": %zu, \"churn\": %d, "
          "\"reference_ms\": {\"mean\": %.4f, \"median\": %.4f}, "
          "\"incremental_ms\": {\"mean\": %.4f, \"median\": %.4f}, "
          "\"speedup\": %.2f, \"identical_decisions\": %s}%s\n",
          r.hosts, r.churn, r.ref_mean_ms, r.ref_median_ms, r.inc_mean_ms,
          r.inc_median_ms, r.speedup, r.identical ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("%8s %8s %14s %14s %9s %10s\n", "hosts", "churn",
                "ref med (ms)", "inc med (ms)", "speedup", "identical");
    for (const Row& r : rows) {
      std::printf("%8zu %8d %14.3f %14.3f %8.2fx %10s\n", r.hosts, r.churn,
                  r.ref_median_ms, r.inc_median_ms, r.speedup,
                  r.identical ? "yes" : "NO");
    }
  }
  return bad;
}

// ---- --smoke: 100-host non-regression gate ---------------------------------

experiments::RunConfig smoke_config(bool incremental) {
  core::ScoreBasedConfig cfg = core::ScoreBasedConfig::sb();
  cfg.incremental = incremental;
  experiments::RunConfig config = bench::week_run_config("SB");
  config.policy_instance = std::make_unique<core::ScoreBasedPolicy>(cfg);
  return config;
}

struct Timed {
  std::vector<double> ms;
  experiments::RunResult result;
};

void time_once(Timed& out, const workload::Workload& jobs, bool incremental) {
  const auto begin = std::chrono::steady_clock::now();
  auto result = experiments::run_experiment(jobs, smoke_config(incremental));
  const auto end = std::chrono::steady_clock::now();
  out.ms.push_back(
      std::chrono::duration<double, std::milli>(end - begin).count());
  out.result = std::move(result);
}

int run_smoke(int repeats) {
  const auto jobs = bench::week_workload();
  std::printf("fleet smoke: 100-host week, %zu jobs, median of %d "
              "interleaved runs each\n",
              jobs.size(), repeats);

  {
    Timed warmup;  // untimed: page-cache/allocator costs go to nobody
    time_once(warmup, jobs, false);
  }
  Timed reference, incremental;
  for (int i = 0; i < repeats; ++i) {
    time_once(reference, jobs, false);
    time_once(incremental, jobs, true);
  }

  std::vector<double> delta;
  for (int i = 0; i < repeats; ++i) {
    delta.push_back(incremental.ms[i] - reference.ms[i]);
  }
  const double ref_ms = median(reference.ms);
  const double inc_ms = median(delta);
  std::printf("  reference    %8.1f ms\n", ref_ms);
  std::printf("  incremental  %+8.1f ms  (%+.2f%%)\n", inc_ms,
              100.0 * inc_ms / ref_ms);

  int bad = 0;
  const auto require = [&bad](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      bad = 1;
    }
  };
  require(incremental.result.events_dispatched ==
                  reference.result.events_dispatched &&
              incremental.result.report.energy_kwh ==
                  reference.result.report.energy_kwh &&
              incremental.result.report.migrations ==
                  reference.result.report.migrations &&
              incremental.result.report.satisfaction ==
                  reference.result.report.satisfaction,
          "incremental run is bit-identical to the reference run");
  // <= 2 % relative, with 5 ms of absolute slack against timer jitter.
  require(inc_ms <= ref_ms * 0.02 + 5.0,
          "incremental path within 2% of the reference at 100 hosts");
  if (bad == 0) std::printf("SMOKE OK\n");
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool json = args.get_bool("json", false);
  const int repeats = static_cast<int>(args.get_int("repeats", 7));
  if (smoke) {
    args.warn_unrecognized();
    return run_smoke(repeats);
  }
  const int rc = run_main(args, json);
  args.warn_unrecognized();
  return rc;
}
