// Figure 3: client satisfaction S as a function of the turn-on/off
// thresholds (lambda_min, lambda_max), score-based policy, week workload.
//
// Paper shape: S decreases as the turn on/off mechanism gets more
// aggressive (it shuts down more machines to save energy), ranging from
// ~100 % down to the low 80s across the grid; the recommended balanced
// point is lambda_min = 30 %, lambda_max = 90 % ("almost complete
// fulfilment of the SLAs while getting substantial power reduction").
//
// Usage: bench_fig3_threshold_sla [--fast] [--csv]
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  bench::print_banner(
      "Figure 3 - client satisfaction vs turn-on/off thresholds (SB policy)",
      "S decreases when the turn on/off mechanism is more aggressive; "
      "lambda = 30-90 gives a balanced trade-off");

  const auto jobs = bench::week_workload();
  const double step = args.get_bool("fast", false) ? 0.40 : 0.20;
  args.warn_unrecognized();

  std::vector<double> lmins, lmaxs;
  for (double l = 0.10; l <= 0.901; l += step) lmins.push_back(l);
  for (double l = 0.20; l <= 1.001; l += step) lmaxs.push_back(l);

  support::TextTable table;
  std::vector<std::string> head{"lmin\\lmax"};
  for (double lx : lmaxs) head.push_back(support::TextTable::num(lx * 100, 0));
  table.header(head);

  // Same sweep shape as Figure 2: grid points fan out across
  // EASCHED_SWEEP_THREADS workers, results return in grid order.
  experiments::SweepRunner sweep;
  std::vector<experiments::SweepTask> tasks;
  for (double ln : lmins) {
    for (double lx : lmaxs) {
      if (lx > ln) tasks.push_back(bench::week_task(jobs, "SB", ln, lx));
    }
  }
  const auto results = sweep.run(std::move(tasks));

  std::vector<std::vector<double>> surface;
  double s_lazy = 0, s_aggressive = 0;
  std::size_t next = 0;
  for (double ln : lmins) {
    std::vector<std::string> row{support::TextTable::num(ln * 100, 0)};
    std::vector<double> srow;
    for (double lx : lmaxs) {
      if (lx <= ln) {
        row.push_back("-");
        srow.push_back(-1);
        continue;
      }
      const auto& res = results[next++];
      row.push_back(support::TextTable::num(res.report.satisfaction, 1));
      srow.push_back(res.report.satisfaction);
      if (ln == lmins.front() && lx == lmaxs[1]) s_lazy = res.report.satisfaction;
      if (ln == lmins.back() && lx == lmaxs.back())
        s_aggressive = res.report.satisfaction;
    }
    table.add_row(row);
    surface.push_back(srow);
  }
  std::printf("Client satisfaction (%%):\n%s\n", table.render().c_str());

  if (args.get_bool("csv", false)) {
    support::CsvWriter csv(std::cout);
    csv.row({"lambda_min", "lambda_max", "satisfaction"});
    for (std::size_t i = 0; i < lmins.size(); ++i) {
      for (std::size_t j = 0; j < lmaxs.size(); ++j) {
        if (surface[i][j] >= 0)
          csv.numeric_row({lmins[i], lmaxs[j], surface[i][j]});
      }
    }
  }

  const bool pass = s_aggressive <= s_lazy;
  std::printf("shape check: aggressive thresholds give at most the "
              "satisfaction of lazy ones -> %s (%.1f vs %.1f %%)\n",
              pass ? "PASS" : "FAIL", s_aggressive, s_lazy);
  return pass ? 0 : 1;
}
