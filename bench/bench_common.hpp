// Shared plumbing of the paper-reproduction benches: the standard week
// workload, a row formatter matching the paper's table columns, and the
// "paper said / we measured" footers that EXPERIMENTS.md quotes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "experiments/sweep.hpp"
#include "support/table.hpp"
#include "workload/synthetic.hpp"

namespace easched::bench {

inline constexpr std::uint64_t kSeed = 20071001;

/// The evaluation workload (synthetic stand-in for the Grid5000 week; see
/// DESIGN.md substitutions).
inline workload::Workload week_workload(std::uint64_t seed = kSeed) {
  return workload::evaluation_workload(seed);
}

/// The standard week configuration: 100-node evaluation datacenter, policy
/// by name, threshold pair.
inline experiments::RunConfig week_run_config(const std::string& policy,
                                              double lambda_min = 0.30,
                                              double lambda_max = 0.90) {
  experiments::RunConfig config;
  config.datacenter = experiments::evaluation_datacenter(kSeed);
  config.policy = policy;
  config.driver.power.lambda_min = lambda_min;
  config.driver.power.lambda_max = lambda_max;
  return config;
}

/// SweepTask for one standard week run. The config factory re-creates the
/// RunConfig on whichever worker thread executes the task (RunConfig is
/// move-only, so tasks carry the recipe, not the value). `jobs` must
/// outlive the sweep.
inline experiments::SweepTask week_task(const workload::Workload& jobs,
                                        std::string policy,
                                        double lambda_min = 0.30,
                                        double lambda_max = 0.90) {
  return {&jobs, [policy = std::move(policy), lambda_min, lambda_max] {
            return week_run_config(policy, lambda_min, lambda_max);
          }};
}

/// Runs one policy over the week on the 100-node evaluation datacenter.
inline experiments::RunResult run_week(
    const workload::Workload& jobs, const std::string& policy,
    double lambda_min = 0.30, double lambda_max = 0.90,
    std::unique_ptr<sched::Policy> instance = nullptr) {
  experiments::RunConfig config = week_run_config(policy, lambda_min,
                                                  lambda_max);
  config.policy_instance = std::move(instance);
  return experiments::run_experiment(jobs, std::move(config));
}

/// Table row in the paper's column layout.
inline std::vector<std::string> report_row(const std::string& label,
                                           const metrics::RunReport& r,
                                           bool with_lambda = false,
                                           bool with_migrations = false) {
  using support::TextTable;
  std::vector<std::string> row{label};
  if (with_lambda) {
    row.push_back(TextTable::num(r.lambda_min * 100, 0) + "-" +
                  TextTable::num(r.lambda_max * 100, 0));
  }
  row.push_back(TextTable::num(r.avg_working, 1) + " / " +
                TextTable::num(r.avg_online, 1));
  row.push_back(TextTable::num(r.cpu_hours, 1));
  row.push_back(TextTable::num(r.energy_kwh, 1));
  row.push_back(TextTable::num(r.satisfaction, 1));
  row.push_back(TextTable::num(r.delay_pct, 1));
  if (with_migrations) {
    row.push_back(std::to_string(r.migrations));
  }
  return row;
}

inline std::vector<std::string> table_header(bool with_lambda,
                                             bool with_migrations) {
  std::vector<std::string> h{"policy"};
  if (with_lambda) h.push_back("lambda");
  h.insert(h.end(), {"Work/ON", "CPU (h)", "Pwr (kWh)", "S (%)", "delay (%)"});
  if (with_migrations) h.push_back("Mig");
  return h;
}

inline void print_banner(const char* experiment, const char* paper_claim) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace easched::bench
