// Observability overhead check: the instrumentation must be free when it
// is not used.
//
// Three configurations of the same run are timed, interleaved within each
// repeat so machine-wide drift (thermal throttling, background load)
// biases every configuration equally:
//   baseline   — no Observability bundle attached (recorder.obs == null)
//   disabled   — bundle attached but nothing enabled (the runtime null
//                sink: one pointer load + flag test per would-be event)
//   tracing    — tracer + profiler enabled (the paid path, reported for
//                context; no budget is enforced on it)
//
// `--smoke` (the `bench_obs_overhead_smoke` ctest entry) exits non-zero
// unless (a) the disabled run is behaviourally identical to the baseline —
// same event count, bit-identical energy/migrations — and (b) the median
// of the per-repeat paired deltas (disabled minus its adjacent baseline,
// which cancels slow drift a min-vs-min comparison cannot) stays within
// 2 % of the median baseline time plus a small absolute slack for timer
// jitter on loaded CI machines.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"

namespace {

using namespace easched;

workload::Workload overhead_workload() {
  workload::SyntheticConfig c;
  c.seed = bench::kSeed;
  c.span_seconds = 7.0 * sim::kDay;
  c.mean_jobs_per_hour = 25;
  return workload::generate(c);
}

experiments::RunConfig overhead_config(obs::Observability* bundle) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(8, 20, 12);
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB";
  config.horizon_s = 90 * sim::kDay;
  config.obs = bundle;
  return config;
}

struct Timed {
  std::vector<double> ms;  ///< one wall-clock sample per repeat
  experiments::RunResult result;
};

void time_once(Timed& out, const workload::Workload& jobs,
               obs::Observability* bundle) {
  const auto begin = std::chrono::steady_clock::now();
  auto result = experiments::run_experiment(jobs, overhead_config(bundle));
  const auto end = std::chrono::steady_clock::now();
  out.ms.push_back(
      std::chrono::duration<double, std::milli>(end - begin).count());
  out.result = std::move(result);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2]
                                  : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const int repeats = static_cast<int>(args.get_int("repeats", 7));
  args.warn_unrecognized();

  const auto jobs = overhead_workload();
  std::printf("obs overhead: %zu jobs, median of %d interleaved runs each\n",
              jobs.size(), repeats);

  {
    // Untimed warm-up: the first run pays allocator/page-cache costs that
    // would otherwise be billed to whichever configuration goes first.
    Timed warmup;
    time_once(warmup, jobs, nullptr);
  }

  Timed baseline, disabled, tracing;
  obs::Observability disabled_bundle;  // attached, nothing enabled
  obs::Observability tracing_bundle;
  tracing_bundle.tracer.enable();
  tracing_bundle.profiler.enable();
  for (int i = 0; i < repeats; ++i) {
    time_once(baseline, jobs, nullptr);
    time_once(disabled, jobs, &disabled_bundle);
    time_once(tracing, jobs, &tracing_bundle);
  }
  // Each repeat appends to the same tracer; per-run count is the total
  // divided by the repeat count.
  const std::size_t events_per_run = tracing_bundle.tracer.size() /
                                     static_cast<std::size_t>(repeats);

  // Paired deltas against the baseline run of the same repeat.
  std::vector<double> disabled_delta, tracing_delta;
  for (int i = 0; i < repeats; ++i) {
    disabled_delta.push_back(disabled.ms[i] - baseline.ms[i]);
    tracing_delta.push_back(tracing.ms[i] - baseline.ms[i]);
  }
  const double base_ms = median(baseline.ms);
  const double disabled_ms = median(disabled_delta);
  const double tracing_ms = median(tracing_delta);

  std::printf("  baseline  %8.1f ms\n", base_ms);
  std::printf("  disabled  %+8.1f ms  (%+.2f%%)\n", disabled_ms,
              100.0 * disabled_ms / base_ms);
  std::printf("  tracing   %+8.1f ms  (%+.2f%%, %zu events/run)\n",
              tracing_ms, 100.0 * tracing_ms / base_ms, events_per_run);

  if (!smoke) return 0;

  int bad = 0;
  const auto require = [&bad](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      bad = 1;
    }
  };
  require(disabled.result.events_dispatched ==
                  baseline.result.events_dispatched &&
              disabled.result.report.energy_kwh ==
                  baseline.result.report.energy_kwh &&
              disabled.result.report.migrations ==
                  baseline.result.report.migrations,
          "disabled-observability run is bit-identical to the baseline");
  require(disabled_bundle.tracer.size() == 0,
          "disabled tracer recorded no events");
  require(events_per_run > 0, "enabled tracer recorded events");
  // <= 2 % relative, with 5 ms of absolute slack against timer jitter.
  require(disabled_ms <= base_ms * 0.02 + 5.0,
          "disabled-observability overhead within 2% of baseline");
  if (bad == 0) std::printf("SMOKE OK\n");
  return bad;
}
