// Ablation A11: the full score-based policy with the section-II
// meta-heuristic (simulated annealing) as its matrix solver, end to end
// over the week, against Algorithm 1's greedy hill climbing.
//
// The paper picks the greedy solver because meta-heuristics / MIP "can
// lead to a too slow decision process for an online scheduler" (section
// II). This bench quantifies the trade on the whole evaluation run — and
// finds it is worse than just slowness: although the annealer reaches
// better single-round optima (see bench_ablation_solver), its stochastic
// round-to-round plans keep re-shuffling running VMs, so end to end it
// churns an order of magnitude more migrations and loses on energy *and*
// satisfaction. The greedy solver's determinism is itself a feature for an
// online scheduler.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"

namespace {

using namespace easched;

struct Outcome {
  metrics::RunReport report;
  double wall_ms = 0;
};

Outcome run_with_solver(const workload::Workload& jobs,
                        core::MatrixSolver solver) {
  auto config = core::ScoreBasedConfig::sb();
  config.solver = solver;
  config.label = solver == core::MatrixSolver::kAnnealing ? "SB-SA" : "SB";
  auto policy = std::make_unique<core::ScoreBasedPolicy>(config);
  const auto start = std::chrono::steady_clock::now();
  const auto res = bench::run_week(jobs, "SB", 0.30, 0.90, std::move(policy));
  const double wall =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return {res.report, wall};
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Ablation - greedy Algorithm 1 vs simulated annealing, end to end",
      "the meta-heuristic matches greedy's energy/SLA at far higher "
      "solver cost - the paper's argument for the online greedy choice");

  const auto jobs = bench::week_workload();
  const Outcome greedy = run_with_solver(jobs, core::MatrixSolver::kHillClimb);
  const Outcome sa = run_with_solver(jobs, core::MatrixSolver::kAnnealing);

  support::TextTable table;
  auto head = bench::table_header(false, true);
  head[0] = "solver";
  head.push_back("wall (ms)");
  table.header(head);
  auto add = [&](const char* name, const Outcome& o) {
    auto row = bench::report_row(name, o.report, false, true);
    row.push_back(support::TextTable::num(o.wall_ms, 0));
    table.add_row(row);
  };
  add("hill climb", greedy);
  add("annealing", sa);
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"annealing does not beat greedy on energy",
       sa.report.energy_kwh > 0.97 * greedy.report.energy_kwh},
      {"annealing costs >= 3x the wall time (too slow for online rounds)",
       sa.wall_ms >= 3.0 * greedy.wall_ms},
      {"annealing's stochastic plans churn migrations (>= 3x greedy)",
       sa.report.migrations >= 3 * greedy.report.migrations},
      {"greedy's stability preserves satisfaction at least as well",
       greedy.report.satisfaction >= sa.report.satisfaction - 0.05},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
