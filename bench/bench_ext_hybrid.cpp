// Extension A8: hybrid datacenter (section II cites Chun et al. [5], "An
// Energy Case for Hybrid Datacenters": mix low-power and high-performance
// nodes).
//
// Replace a slice of the evaluation fleet with wimpy low-power nodes
// (2 cores, 38-64 W vs 230-304 W) and let the score-based scheduler place
// freely — small VMs fit the wimpies, 4-core jobs still need big iron.
// Compared fleets have equal aggregate core count.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace easched;

metrics::RunReport run_fleet(const workload::Workload& jobs,
                             std::vector<datacenter::HostSpec> hosts) {
  experiments::RunConfig config;
  config.datacenter.hosts = std::move(hosts);
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB";
  config.horizon_s = 60 * sim::kDay;
  return experiments::run_experiment(jobs, std::move(config)).report;
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - hybrid fleet with low-power nodes (ref [5] of the paper)",
      "a hybrid fleet at equal core count cuts energy when the workload "
      "has a small-VM tail the wimpy nodes can absorb");

  const auto jobs = bench::week_workload();

  // Homogeneous: the standard 100 nodes x 4 cores = 400 cores.
  const auto homogeneous =
      run_fleet(jobs, experiments::evaluation_hosts(15, 50, 35));

  // Hybrid: 80 big nodes + 40 low-power (2-core) = 400 cores.
  auto hybrid_hosts = experiments::evaluation_hosts(12, 40, 28);
  for (int i = 0; i < 40; ++i) {
    hybrid_hosts.push_back(datacenter::HostSpec::low_power());
  }
  const auto hybrid = run_fleet(jobs, hybrid_hosts);

  support::TextTable table;
  auto head = bench::table_header(false, true);
  head[0] = "fleet";
  table.header(head);
  table.add_row(bench::report_row("homogeneous 100x4c", homogeneous, false,
                                  true));
  table.add_row(bench::report_row("hybrid 80x4c+40x2c", hybrid, false, true));
  std::printf("%s\n", table.render().c_str());

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"hybrid fleet uses less energy at equal core count",
       hybrid.energy_kwh < homogeneous.energy_kwh},
      {"hybrid fleet keeps satisfaction within 1 pp",
       hybrid.satisfaction >= homogeneous.satisfaction - 1.0},
      {"both fleets finish everything",
       hybrid.jobs_finished == jobs.size() &&
           homogeneous.jobs_finished == jobs.size()},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  std::printf("hybrid saving: %.1f %%\n",
              100.0 * (1.0 - hybrid.energy_kwh / homogeneous.energy_kwh));
  return all ? 0 : 1;
}
