// Micro-benchmarks (google-benchmark): throughput of the pieces that bound
// simulation speed — the event queue, the Xen allocation, score-matrix
// construction, one hill-climbing round, and a whole simulated day.
//
// The paper's simulator "can simulate a large virtualized datacenter
// executing a workload for a week using one machine during an hour"; these
// numbers document that our event-driven kernel does the same week in
// seconds.
#include <benchmark/benchmark.h>

#include "core/hill_climb.hpp"
#include "core/score_based_policy.hpp"
#include "core/score_matrix.hpp"
#include "core/solver_pool.hpp"
#include "datacenter/xen_scheduler.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace easched;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      q.push((i * 2654435761u) % 100000, [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop().action();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_XenAllocate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<datacenter::CpuDemand> vms;
  for (int i = 0; i < n; ++i) {
    vms.push_back({50.0 + 37.0 * (i % 9), 256.0, 0.0});
  }
  for (auto _ : state) {
    auto alloc = datacenter::allocate_cpu(400.0, vms, 80.0);
    benchmark::DoNotOptimize(alloc.used_pct);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_XenAllocate)->Arg(4)->Arg(16)->Arg(64);

/// A populated datacenter for matrix benchmarks.
struct MatrixFixture {
  sim::Simulator simulator;
  metrics::Recorder recorder{100};
  datacenter::Datacenter dc;
  std::vector<datacenter::VmId> queue;

  MatrixFixture()
      : dc(simulator, experiments::evaluation_datacenter(5), recorder) {
    support::Rng rng{11};
    // 60 running VMs spread over the fleet + 8 queued.
    for (int i = 0; i < 60; ++i) {
      workload::Job job;
      job.submit = 0;
      job.dedicated_seconds = 7200;
      job.cpu_pct = (i % 4 + 1) * 100.0;
      job.mem_mb = 512;
      const auto v = dc.admit_job(job);
      dc.place(v, static_cast<datacenter::HostId>(
                      rng.uniform_int(0, dc.num_hosts() - 1)));
    }
    simulator.run_until(600);  // creations settle
    for (int i = 0; i < 8; ++i) {
      workload::Job job;
      job.submit = simulator.now();
      job.dedicated_seconds = 3600;
      job.cpu_pct = 100;
      job.mem_mb = 512;
      queue.push_back(dc.admit_job(job));
    }
  }
};

void BM_ScoreMatrixBuild(benchmark::State& state) {
  MatrixFixture fx;
  core::ScoreParams params;
  for (auto _ : state) {
    core::ScoreModel model(fx.dc, fx.queue, params, true);
    benchmark::DoNotOptimize(model.cols());
  }
}
BENCHMARK(BM_ScoreMatrixBuild);

void BM_HillClimbRound(benchmark::State& state) {
  MatrixFixture fx;
  core::ScoreParams params;
  for (auto _ : state) {
    core::ScoreModel model(fx.dc, fx.queue, params, true);
    core::HillClimbLimits limits;
    auto stats = core::hill_climb(model, limits);
    benchmark::DoNotOptimize(stats.moves);
  }
}
BENCHMARK(BM_HillClimbRound);

/// A populated datacenter at parametric scale for the solver_scaling
/// benchmark: `hosts` nodes in the evaluation fleet's 15/50/35 mix, with
/// a running population of ~60 % of the fleet and a queue burst. Fixed
/// seeds: every solver variant sees the identical instance.
struct ScalingFixture {
  sim::Simulator simulator;
  metrics::Recorder recorder;
  datacenter::Datacenter dc;
  std::vector<datacenter::VmId> queue;

  static datacenter::DatacenterConfig make_config(int hosts) {
    const std::size_t fast = static_cast<std::size_t>(hosts) * 15 / 100;
    const std::size_t medium = static_cast<std::size_t>(hosts) / 2;
    datacenter::DatacenterConfig config;
    config.hosts = experiments::evaluation_hosts(
        fast, medium, static_cast<std::size_t>(hosts) - fast - medium);
    config.seed = 3;
    return config;
  }

  explicit ScalingFixture(int hosts)
      : recorder(static_cast<std::size_t>(hosts)),
        dc(simulator, make_config(hosts), recorder) {
    support::Rng rng{23};
    const int running = hosts * 3 / 5;
    for (int i = 0; i < running; ++i) {
      workload::Job job;
      job.submit = 0;
      job.dedicated_seconds = 36000;
      job.cpu_pct = (i % 4 + 1) * 100.0;
      job.mem_mb = 512;
      const auto v = dc.admit_job(job);
      datacenter::HostId h = static_cast<datacenter::HostId>(
          rng.uniform_int(0, dc.num_hosts() - 1));
      while (!dc.fits(h, v)) h = (h + 1) % dc.num_hosts();
      dc.place(v, h);
    }
    simulator.run_until(600);  // creations settle
    const int queued = hosts / 12 + 4;
    for (int i = 0; i < queued; ++i) {
      workload::Job job;
      job.submit = simulator.now();
      job.dedicated_seconds = 7200;
      job.cpu_pct = (i % 2 + 1) * 100.0;
      job.mem_mb = 512;
      queue.push_back(dc.admit_job(job));
    }
  }
};

/// solver_scaling: one consolidation round (matrix build + solve) at fleet
/// sizes 100 / 400 / 1600, comparing the seed implementation
/// (hill_climb_reference, full-matrix rescan per iteration), the
/// incremental production solver, and the incremental solver over a 4-way
/// SolverPool. All three produce bit-identical plans
/// (tests/test_solver_equivalence.cpp); only the time differs.
template <typename Solve>
void solver_scaling_round(benchmark::State& state, const Solve& solve,
                          core::SolverPool* pool = nullptr) {
  ScalingFixture fx(static_cast<int>(state.range(0)));
  core::ScoreParams params;
  for (auto _ : state) {
    core::ScoreModel model(fx.dc, fx.queue, params, /*migration=*/true, pool);
    auto stats = solve(model);
    benchmark::DoNotOptimize(stats.moves);
  }
  state.counters["moves"] = static_cast<double>([&] {
    core::ScoreModel model(fx.dc, fx.queue, params, true, pool);
    return solve(model).moves;
  }());
}

void BM_SolverScaling_Serial(benchmark::State& state) {
  solver_scaling_round(state, [](core::ScoreModel& model) {
    return core::hill_climb_reference(model, core::HillClimbLimits{});
  });
}
BENCHMARK(BM_SolverScaling_Serial)
    ->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_SolverScaling_Incremental(benchmark::State& state) {
  solver_scaling_round(state, [](core::ScoreModel& model) {
    return core::hill_climb(model, core::HillClimbLimits{});
  });
}
BENCHMARK(BM_SolverScaling_Incremental)
    ->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_SolverScaling_Threaded4(benchmark::State& state) {
  core::SolverPool pool(4);
  core::HillClimbLimits limits;
  limits.pool = &pool;
  solver_scaling_round(state, [&](core::ScoreModel& model) {
    return core::hill_climb(model, limits);
  }, &pool);
}
BENCHMARK(BM_SolverScaling_Threaded4)
    ->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedDay(benchmark::State& state) {
  workload::SyntheticConfig wl;
  wl.span_seconds = sim::kDay;
  const auto jobs = workload::generate(wl);
  for (auto _ : state) {
    experiments::RunConfig config;
    config.datacenter = experiments::evaluation_datacenter(1);
    config.policy = "SB";
    auto res = experiments::run_experiment(jobs, std::move(config));
    benchmark::DoNotOptimize(res.report.energy_kwh);
  }
}
BENCHMARK(BM_SimulatedDay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
