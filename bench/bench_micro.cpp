// Micro-benchmarks (google-benchmark): throughput of the pieces that bound
// simulation speed — the event queue, the Xen allocation, score-matrix
// construction, one hill-climbing round, and a whole simulated day.
//
// The paper's simulator "can simulate a large virtualized datacenter
// executing a workload for a week using one machine during an hour"; these
// numbers document that our event-driven kernel does the same week in
// seconds.
#include <benchmark/benchmark.h>

#include "core/hill_climb.hpp"
#include "core/score_based_policy.hpp"
#include "core/score_matrix.hpp"
#include "datacenter/xen_scheduler.hpp"
#include "experiments/runner.hpp"
#include "experiments/setup.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace easched;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      q.push((i * 2654435761u) % 100000, [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop().action();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_XenAllocate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<datacenter::CpuDemand> vms;
  for (int i = 0; i < n; ++i) {
    vms.push_back({50.0 + 37.0 * (i % 9), 256.0, 0.0});
  }
  for (auto _ : state) {
    auto alloc = datacenter::allocate_cpu(400.0, vms, 80.0);
    benchmark::DoNotOptimize(alloc.used_pct);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_XenAllocate)->Arg(4)->Arg(16)->Arg(64);

/// A populated datacenter for matrix benchmarks.
struct MatrixFixture {
  sim::Simulator simulator;
  metrics::Recorder recorder{100};
  datacenter::Datacenter dc;
  std::vector<datacenter::VmId> queue;

  MatrixFixture()
      : dc(simulator, experiments::evaluation_datacenter(5), recorder) {
    support::Rng rng{11};
    // 60 running VMs spread over the fleet + 8 queued.
    for (int i = 0; i < 60; ++i) {
      workload::Job job;
      job.submit = 0;
      job.dedicated_seconds = 7200;
      job.cpu_pct = (i % 4 + 1) * 100.0;
      job.mem_mb = 512;
      const auto v = dc.admit_job(job);
      dc.place(v, static_cast<datacenter::HostId>(
                      rng.uniform_int(0, dc.num_hosts() - 1)));
    }
    simulator.run_until(600);  // creations settle
    for (int i = 0; i < 8; ++i) {
      workload::Job job;
      job.submit = simulator.now();
      job.dedicated_seconds = 3600;
      job.cpu_pct = 100;
      job.mem_mb = 512;
      queue.push_back(dc.admit_job(job));
    }
  }
};

void BM_ScoreMatrixBuild(benchmark::State& state) {
  MatrixFixture fx;
  core::ScoreParams params;
  for (auto _ : state) {
    core::ScoreModel model(fx.dc, fx.queue, params, true);
    benchmark::DoNotOptimize(model.cols());
  }
}
BENCHMARK(BM_ScoreMatrixBuild);

void BM_HillClimbRound(benchmark::State& state) {
  MatrixFixture fx;
  core::ScoreParams params;
  for (auto _ : state) {
    core::ScoreModel model(fx.dc, fx.queue, params, true);
    core::HillClimbLimits limits;
    auto stats = core::hill_climb(model, limits);
    benchmark::DoNotOptimize(stats.moves);
  }
}
BENCHMARK(BM_HillClimbRound);

void BM_SimulatedDay(benchmark::State& state) {
  workload::SyntheticConfig wl;
  wl.span_seconds = sim::kDay;
  const auto jobs = workload::generate(wl);
  for (auto _ : state) {
    experiments::RunConfig config;
    config.datacenter = experiments::evaluation_datacenter(1);
    config.policy = "SB";
    auto res = experiments::run_experiment(jobs, std::move(config));
    benchmark::DoNotOptimize(res.report.energy_kwh);
  }
}
BENCHMARK(BM_SimulatedDay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
