// Attribution overhead + conservation check: the energy ledger and
// decision log must be free when not enabled, and exact when they are.
//
// Mirrors bench_obs_overhead's interleaved-repeat methodology:
//   baseline    — no Observability bundle (recorder.obs == null)
//   disabled    — bundle attached, ledger/decisions not enabled (the
//                 runtime null sink every instrumented call site pays)
//   attributed  — ledger + decision log enabled (the paid path, reported
//                 for context; no budget enforced on it)
//
// `--smoke` (the `bench_attribution_smoke` ctest entry) exits non-zero
// unless (a) the disabled run stays bit-identical to the baseline, (b) the
// median paired delta stays within 2% of the baseline time (+ absolute
// slack for timer jitter), and (c) the attributed run's per-host joules
// sum to the aggregate RunReport energy within 0.1% — the ledger watches
// the identical power signal, so the books must balance.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "support/cli.hpp"

namespace {

using namespace easched;

workload::Workload overhead_workload() {
  workload::SyntheticConfig c;
  c.seed = bench::kSeed;
  c.span_seconds = 7.0 * sim::kDay;
  c.mean_jobs_per_hour = 25;
  return workload::generate(c);
}

experiments::RunConfig overhead_config(obs::Observability* bundle) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(8, 20, 12);
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB";
  config.horizon_s = 90 * sim::kDay;
  config.obs = bundle;
  return config;
}

struct Timed {
  std::vector<double> ms;
  experiments::RunResult result;
};

void time_once(Timed& out, const workload::Workload& jobs,
               obs::Observability* bundle) {
  const auto begin = std::chrono::steady_clock::now();
  auto result = experiments::run_experiment(jobs, overhead_config(bundle));
  const auto end = std::chrono::steady_clock::now();
  out.ms.push_back(
      std::chrono::duration<double, std::milli>(end - begin).count());
  out.result = std::move(result);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2]
                                  : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const int repeats = static_cast<int>(args.get_int("repeats", 7));
  args.warn_unrecognized();

  const auto jobs = overhead_workload();
  std::printf(
      "attribution overhead: %zu jobs, median of %d interleaved runs each\n",
      jobs.size(), repeats);

  {
    Timed warmup;  // untimed: pays first-touch allocator/page-cache costs
    time_once(warmup, jobs, nullptr);
  }

  Timed baseline, disabled, attributed;
  obs::Observability disabled_bundle;  // attached, nothing enabled
  for (int i = 0; i < repeats; ++i) {
    time_once(baseline, jobs, nullptr);
    time_once(disabled, jobs, &disabled_bundle);
    // The ledger accumulates across runs, so the attributed configuration
    // gets a fresh bundle each repeat (construction cost is noise at this
    // run length).
    obs::Observability attributed_bundle;
    attributed_bundle.ledger.enable();
    attributed_bundle.decisions.enable();
    time_once(attributed, jobs, &attributed_bundle);
    if (i == repeats - 1) {
      // Conservation check on the final repeat's ledger.
      const double ledger_kwh =
          attributed_bundle.ledger.total_j() / 3.6e6;
      const double report_kwh = attributed.result.report.energy_kwh;
      std::printf("  ledger %0.6f kWh vs report %0.6f kWh (rel %.2e)\n",
                  ledger_kwh, report_kwh,
                  report_kwh > 0
                      ? std::fabs(ledger_kwh - report_kwh) / report_kwh
                      : 0.0);
      attributed.result.report.duration_s =
          attributed.result.report.duration_s;  // keep result in scope
#if EASCHED_TRACE_ENABLED
      if (smoke) {
        const bool conserved =
            report_kwh > 0 &&
            std::fabs(ledger_kwh - report_kwh) / report_kwh <= 1e-3;
        const bool decided =
            attributed_bundle.decisions.size() > 0;
        if (!conserved) {
          std::printf(
              "SMOKE FAIL: ledger joules within 0.1%% of RunReport\n");
          return 1;
        }
        if (!decided) {
          std::printf("SMOKE FAIL: decision log recorded decisions\n");
          return 1;
        }
      }
#else
      // EASCHED_TRACE=OFF compiles the instrumentation out: the ledger
      // stays empty by design, so only the overhead budget applies.
      std::printf("  (EASCHED_TRACE=OFF: conservation check skipped)\n");
#endif
    }
  }

  std::vector<double> disabled_delta, attributed_delta;
  for (int i = 0; i < repeats; ++i) {
    disabled_delta.push_back(disabled.ms[i] - baseline.ms[i]);
    attributed_delta.push_back(attributed.ms[i] - baseline.ms[i]);
  }
  const double base_ms = median(baseline.ms);
  const double disabled_ms = median(disabled_delta);
  const double attributed_ms = median(attributed_delta);

  std::printf("  baseline    %8.1f ms\n", base_ms);
  std::printf("  disabled    %+8.1f ms  (%+.2f%%)\n", disabled_ms,
              100.0 * disabled_ms / base_ms);
  std::printf("  attributed  %+8.1f ms  (%+.2f%%)\n", attributed_ms,
              100.0 * attributed_ms / base_ms);

  if (!smoke) return 0;

  int bad = 0;
  const auto require = [&bad](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      bad = 1;
    }
  };
  require(disabled.result.events_dispatched ==
                  baseline.result.events_dispatched &&
              disabled.result.report.energy_kwh ==
                  baseline.result.report.energy_kwh &&
              disabled.result.report.migrations ==
                  baseline.result.report.migrations,
          "disabled-attribution run is bit-identical to the baseline");
  require(disabled_bundle.ledger.total_j() == 0,
          "disabled ledger integrated no joules");
  require(disabled_bundle.decisions.size() == 0,
          "disabled decision log recorded no decisions");
  require(attributed.result.report.energy_kwh ==
              baseline.result.report.energy_kwh,
          "attribution does not perturb the simulation");
  // <= 2 % relative, with 5 ms of absolute slack against timer jitter.
  require(disabled_ms <= base_ms * 0.02 + 5.0,
          "disabled-attribution overhead within 2% of baseline");
  if (bad == 0) std::printf("SMOKE OK\n");
  return bad;
}
