// Extension A6: economic view ("global revenue" in sections I/III; future
// work: "an automatic setting according with economical parameters" and
// "economical decision making").
//
// Prices every Table-II/IV policy with the cost model: revenue per
// delivered core-hour discounted by satisfaction, energy bought at a flat
// tariff, plus a fixed penalty per badly breached job. The interesting
// output is the profit column: consolidation converts directly into
// margin, and the non-consolidating policies lose twice (energy + refunds).
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/cost_model.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - provider economics (revenue / energy cost / profit)",
      "consolidating policies convert the 15 % energy cut into margin; "
      "RD/RR lose twice: energy plus SLA refunds");

  const auto jobs = bench::week_workload();
  metrics::CostModelConfig pricing;

  support::TextTable table;
  table.header({"policy", "lambda", "revenue (EUR)", "energy (EUR)",
                "penalties (EUR)", "profit (EUR)"});

  struct Entry {
    const char* policy;
    double lmin, lmax;
    metrics::CostReport cost;
    metrics::RunReport report;
  };
  std::vector<Entry> entries = {{"RD", 0.30, 0.90, {}, {}},
                                {"RR", 0.30, 0.90, {}, {}},
                                {"BF", 0.30, 0.90, {}, {}},
                                {"DBF", 0.30, 0.90, {}, {}},
                                {"SB", 0.40, 0.90, {}, {}}};

  for (auto& e : entries) {
    // Re-run through the low-level pieces so the recorder stays available
    // for pricing.
    experiments::RunConfig config;
    config.datacenter = experiments::evaluation_datacenter(bench::kSeed);
    config.policy = e.policy;
    config.driver.power.lambda_min = e.lmin;
    config.driver.power.lambda_max = e.lmax;

    sim::Simulator simulator;
    metrics::Recorder recorder(config.datacenter.hosts.size());
    datacenter::Datacenter dc(simulator, config.datacenter, recorder);
    auto policy = experiments::make_policy(e.policy);
    sched::SchedulerDriver driver(simulator, dc, *policy, config.driver);
    driver.submit_workload(jobs);
    driver.on_all_done = [&simulator] { simulator.stop(); };
    simulator.run();

    e.cost = metrics::price_run(recorder, simulator.now(), pricing);
    e.report = metrics::make_report(recorder, simulator.now(), e.policy,
                                    e.lmin, e.lmax);
    table.add_row({e.policy,
                   support::TextTable::num(e.lmin * 100, 0) + "-" +
                       support::TextTable::num(e.lmax * 100, 0),
                   support::TextTable::num(e.cost.revenue_eur, 2),
                   support::TextTable::num(e.cost.energy_cost_eur, 2),
                   support::TextTable::num(e.cost.breach_penalties_eur, 2),
                   support::TextTable::num(e.cost.profit_eur(), 2)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& rd = entries[0].cost;
  const auto& rr = entries[1].cost;
  const auto& bf = entries[2].cost;
  const auto& dbf = entries[3].cost;
  const auto& sb = entries[4].cost;

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"every consolidating policy is profitable",
       bf.profit_eur() > 0 && dbf.profit_eur() > 0 && sb.profit_eur() > 0},
      {"SB@40-90 yields the highest profit",
       sb.profit_eur() > bf.profit_eur() && sb.profit_eur() > dbf.profit_eur() &&
           sb.profit_eur() > rd.profit_eur() && sb.profit_eur() > rr.profit_eur()},
      {"RD pays breach penalties, SB none",
       rd.breach_penalties_eur > 0 && sb.breach_penalties_eur == 0},
      {"RD and RR earn less revenue than BF (satisfaction discount)",
       rd.revenue_eur < bf.revenue_eur && rr.revenue_eur < bf.revenue_eur},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
