// Table I: virtualized server power usage.
//
// The paper measures a 4-way Xen host under eight VM configurations and
// finds power depends only on the *total* CPU the VMs consume. We replay
// exactly those configurations through the Host + XenScheduler + PowerModel
// stack (not just the PowerModel curve): each configuration boots one host,
// creates the VMs, lets the credit scheduler allocate CPU and reads the
// steady-state wattage the metrics recorder sees.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "datacenter/datacenter.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace easched;

struct Config1 {
  const char* label;
  std::vector<double> vm_cpu_pct;  ///< demand of each VM
  double paper_watts;
};

/// Steady-state power of one 4-way host running the given VMs.
double measure_watts(const Config1& c) {
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::medium()};
  config.seed = 1;
  datacenter::Datacenter dc(simulator, config, recorder);

  for (double cpu : c.vm_cpu_pct) {
    workload::Job job;
    job.id = 0;
    job.submit = 0;
    job.dedicated_seconds = 100000;  // long enough to reach steady state
    job.cpu_pct = cpu;
    job.mem_mb = 256;
    const auto v = dc.admit_job(job);
    dc.place(v, 0);
  }
  // Let creations finish, then read the instantaneous power.
  simulator.run_until(1000);
  return recorder.watts.host_current(0);
}

}  // namespace

int main() {
  bench::print_banner(
      "Table I - virtualized server power usage",
      "power depends only on total CPU consumed: 230 W idle, 259/273/291/"
      "304 W at 100/200/300/400 %; VM count does not matter");

  // The eight configurations of Table I. "a+b" = multiple VMs.
  const std::vector<Config1> configs = {
      {"1 VCPU @ 100%", {100}, 259},
      {"2 VCPU @ 200%", {200}, 273},
      {"3 VCPU @ 300%", {300}, 291},
      {"4 VCPU @ 400%", {400}, 304},
      {"1+1 @ 2x100%", {100, 100}, 273},
      {"1+2 @ 100+200%", {100, 200}, 291},
      {"1+1+1+1 @ 4x100%", {100, 100, 100, 100}, 304},
      {"1+1+1+1 @ 4x0%", {0.01, 0.01, 0.01, 0.01}, 230},
  };

  support::TextTable table;
  table.header({"configuration", "paper (W)", "measured (W)", "err (%)"});
  double max_err = 0;
  for (const auto& c : configs) {
    const double w = measure_watts(c);
    const double err = 100.0 * (w - c.paper_watts) / c.paper_watts;
    max_err = std::max(max_err, std::abs(err));
    table.add_row({c.label, support::TextTable::num(c.paper_watts, 0),
                   support::TextTable::num(w, 1),
                   support::TextTable::num(err, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("max deviation from Table I: %.2f %%\n", max_err);
  std::printf(
      "shape check: equal total CPU -> equal power regardless of VM count\n");
  return max_err < 1.0 ? 0 : 1;
}
