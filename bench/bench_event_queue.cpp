// Simulation-kernel benchmark: the pooled event queue against the pre-pool
// reference implementation, whole-run throughput, and sweep-harness scaling.
//
// Four sections:
//   churn          — push N random-time events, pop them all (the queue's
//                    steady-state arrival/dispatch pattern)
//   cancel_resched — cancel + re-push against a standing live set (the
//                    simulator's VM-finish rescheduling pattern)
//   whole_run_week — events/sec of the full SB week reproduction, measured
//                    through whichever queue the build selected (see
//                    EASCHED_SIM_REFERENCE_QUEUE in event_queue.hpp)
//   sweep          — wall-clock of a small threshold grid under
//                    SweepRunner(1) vs SweepRunner(4)
//
// Both microbench sections drive PooledEventQueue and ReferenceEventQueue
// in the same binary, interleaved within each repeat so machine-wide drift
// biases both equally.
//
// `--smoke` (the `bench_sim_smoke` ctest entry) runs reduced-size
// microbenches only and exits non-zero if the pooled queue is slower than
// the reference on either pattern (small multiplicative slack for timer
// jitter). `--json` emits the measurements as JSON for
// scripts/refresh_bench.sh to assemble into BENCH_sim.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/event_queue.hpp"
#include "sim/reference_event_queue.hpp"
#include "support/cli.hpp"

namespace {

using namespace easched;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0
               : (n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

/// Push `n` events at pseudo-random times, then pop the queue dry.
/// Returns elapsed ms; `sink` guards against the loop being optimised out.
template <typename Queue>
double churn_once(int n, int& sink) {
  Queue q;
  int fired = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    q.push(static_cast<sim::SimTime>((i * 2654435761u) % 100000),
           [&fired] { ++fired; });
  }
  while (!q.empty()) q.pop().action();
  const double ms = ms_since(t0);
  sink += fired;
  return ms;
}

/// Maintain a standing set of `live` events; each round cancels one,
/// re-pushes it, and every fourth round pops. The simulator does exactly
/// this for VM-finish events on every CPU reallocation.
template <typename Queue>
double cancel_resched_once(int live, int rounds, int& sink) {
  Queue q;
  std::vector<decltype(q.push(0, [] {}))> ids(
      static_cast<std::size_t>(live));
  sim::SimTime t = 0;
  for (int i = 0; i < live; ++i) ids[i] = q.push(1000 + i, [] {});
  const auto t0 = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    const auto k = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(i) * 48271u) % static_cast<std::uint64_t>(live));
    q.cancel(ids[k]);
    ids[k] = q.push(t + 500 + (i % 997), [] {});
    if (i % 4 == 0) t = q.pop().time;
  }
  const double ms = ms_since(t0);
  sink += static_cast<int>(q.size());
  return ms;
}

struct Row {
  std::string name;
  double value;
  std::string unit;
};

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool json = args.get_bool("json", false);
  const bool skip_week = args.get_bool("skip-week", smoke);
  const bool skip_sweep = args.get_bool("skip-sweep", smoke);
  const int reps = static_cast<int>(args.get_int("reps", smoke ? 3 : 5));
  args.warn_unrecognized();

  std::vector<Row> rows;
  int sink = 0;

  // ---- churn + cancel_resched, pooled vs reference, interleaved --------
  const int churn_n = smoke ? 50000 : 200000;
  const int cr_live = 2000;
  const int cr_rounds = smoke ? 30000 : 100000;
  std::vector<double> churn_pooled, churn_ref, cr_pooled, cr_ref;
  for (int r = 0; r < reps; ++r) {
    churn_pooled.push_back(churn_once<sim::PooledEventQueue>(churn_n, sink));
    churn_ref.push_back(churn_once<sim::ReferenceEventQueue>(churn_n, sink));
    cr_pooled.push_back(
        cancel_resched_once<sim::PooledEventQueue>(cr_live, cr_rounds, sink));
    cr_ref.push_back(cancel_resched_once<sim::ReferenceEventQueue>(
        cr_live, cr_rounds, sink));
  }
  // churn does one push + one pop per event.
  const double churn_pooled_ns = median(churn_pooled) * 1e6 / (2.0 * churn_n);
  const double churn_ref_ns = median(churn_ref) * 1e6 / (2.0 * churn_n);
  const double cr_pooled_ns = median(cr_pooled) * 1e6 / cr_rounds;
  const double cr_ref_ns = median(cr_ref) * 1e6 / cr_rounds;
  rows.push_back({"churn_pooled", churn_pooled_ns, "ns/op"});
  rows.push_back({"churn_reference", churn_ref_ns, "ns/op"});
  rows.push_back({"cancel_resched_pooled", cr_pooled_ns, "ns/op"});
  rows.push_back({"cancel_resched_reference", cr_ref_ns, "ns/op"});

  if (!json) {
    std::printf("churn (push+pop, n=%d):    pooled %7.1f ns/op,  "
                "reference %7.1f ns/op  (%.2fx)\n",
                churn_n, churn_pooled_ns, churn_ref_ns,
                churn_ref_ns / churn_pooled_ns);
    std::printf("cancel+reschedule (live=%d): pooled %7.1f ns/op,  "
                "reference %7.1f ns/op  (%.2fx)\n",
                cr_live, cr_pooled_ns, cr_ref_ns, cr_ref_ns / cr_pooled_ns);
  }

  // ---- whole-run week events/sec (through the build's EventQueue) ------
  if (!skip_week) {
    const auto jobs = bench::week_workload();
    double best_ms = 0;
    std::uint64_t dispatched = 0;
    const int week_reps = static_cast<int>(args.get_int("week-reps", 1));
    for (int r = 0; r < week_reps; ++r) {
      const auto t0 = Clock::now();
      const auto res = experiments::run_experiment(
          jobs, bench::week_run_config("SB", 0.30, 0.90));
      const double ms = ms_since(t0);
      if (r == 0 || ms < best_ms) best_ms = ms;
      dispatched = res.events_dispatched;
    }
    const double events_per_sec = dispatched / (best_ms / 1000.0);
    rows.push_back({"whole_run_week_ms", best_ms, "ms"});
    rows.push_back({"whole_run_week_events", static_cast<double>(dispatched),
                    "events"});
    rows.push_back({"whole_run_week_events_per_sec", events_per_sec,
                    "events/s"});
    if (!json) {
      std::printf("whole-run week (SB 30-90, %s queue): %.0f ms, "
                  "%llu events, %.0f events/sec\n",
#ifdef EASCHED_SIM_REFERENCE_QUEUE
                  "reference",
#else
                  "pooled",
#endif
                  best_ms, static_cast<unsigned long long>(dispatched),
                  events_per_sec);
    }
  }

  // ---- sweep harness scaling on a small grid ---------------------------
  if (!skip_sweep) {
    workload::SyntheticConfig wl;
    wl.seed = bench::kSeed;
    wl.span_seconds = 0.75 * sim::kDay;
    wl.mean_jobs_per_hour = 10;
    const auto jobs = workload::generate(wl);
    const auto grid = [&jobs] {
      std::vector<experiments::SweepTask> tasks;
      for (double lmin : {0.10, 0.30, 0.50, 0.70}) {
        for (double lmax : {0.80, 1.00}) {
          tasks.push_back({&jobs, [lmin, lmax] {
                             experiments::RunConfig config;
                             config.datacenter.hosts =
                                 experiments::evaluation_hosts(4, 10, 6);
                             config.datacenter.seed = 5;
                             config.policy = "SB";
                             config.driver.power.lambda_min = lmin;
                             config.driver.power.lambda_max = lmax;
                             return config;
                           }});
        }
      }
      return tasks;
    };
    const auto time_sweep = [&grid](int threads) {
      experiments::SweepRunner sweep(threads);
      const auto t0 = Clock::now();
      const auto results = sweep.run(grid());
      double ms = ms_since(t0);
      return results.empty() ? 0.0 : ms;
    };
    time_sweep(1);  // warm-up (page cache, allocator)
    const double serial_ms = time_sweep(1);
    const double threaded_ms = time_sweep(4);
    rows.push_back({"sweep_grid8_threads1_ms", serial_ms, "ms"});
    rows.push_back({"sweep_grid8_threads4_ms", threaded_ms, "ms"});
    rows.push_back({"sweep_grid8_speedup", serial_ms / threaded_ms, "x"});
    if (!json) {
      std::printf("sweep (8-point grid): 1 thread %.0f ms, 4 threads "
                  "%.0f ms (%.2fx, %u hw threads)\n",
                  serial_ms, threaded_ms, serial_ms / threaded_ms,
                  std::thread::hardware_concurrency());
    }
  }

  if (json) {
    std::printf("{\n  \"context\": {\"queue\": \"%s\", \"hw_threads\": %u, "
                "\"reps\": %d},\n  \"benchmarks\": [\n",
#ifdef EASCHED_SIM_REFERENCE_QUEUE
                "reference",
#else
                "pooled",
#endif
                std::thread::hardware_concurrency(), reps);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf("    {\"name\": \"%s\", \"value\": %.2f, \"unit\": \"%s\"}%s\n",
                  rows[i].name.c_str(), rows[i].value, rows[i].unit.c_str(),
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  }

  if (smoke) {
    // The pooled queue must not regress below the seed implementation on
    // either pattern. 15 % multiplicative slack absorbs timer jitter on
    // loaded single-core CI machines; the expected margin is several x.
    bool ok = true;
    const auto require = [&ok](const char* what, double pooled, double ref) {
      const bool pass = pooled <= ref * 1.15;
      std::printf("smoke: %s pooled %.1f ns/op vs reference %.1f ns/op -> "
                  "%s\n", what, pooled, ref, pass ? "PASS" : "FAIL");
      ok = ok && pass;
    };
    require("churn", churn_pooled_ns, churn_ref_ns);
    require("cancel+reschedule", cr_pooled_ns, cr_ref_ns);
    if (sink == 0) ok = false;  // keep the sink observable
    return ok ? 0 : 1;
  }
  return sink != 0 ? 0 : 1;
}
