// Table III: impact of the virtualization-overhead penalties (no
// migration): SB0, SB1 = SB0 + Pvirt, SB2 = SB1 + Pconc, plus SB2 with the
// more aggressive lambda = 40-90.
//
// Paper rows (lambda, Work/ON, CPU, Pwr, S, delay):
//   SB0 30-90  9.85/22.4  6055.3  1016.3  98.2  10.4
//   SB1 30-90  10.2/22.2  6055.3  1006.7  97.9  10.7
//   SB2 30-90  10.2/23.0  6068.5  1038.5  99.2   8.8
//   SB2 40-90  10.4/19.0  6055.1   880.5  98.1  10.2
// Shape: accounting for concurrency (SB2) buys satisfaction for a little
// power; the regained SLA headroom allows more aggressive thresholds
// (lambda_min = 40), which cut power by >12 % versus SB0/BF at equal S.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace easched;
  bench::print_banner(
      "Table III - score-based policies without migration",
      "SB2 (creation + concurrency aware) improves S and enables more "
      "aggressive turn-off thresholds; SB2@40-90 cuts >12 % power vs BF");

  const auto jobs = bench::week_workload();
  support::TextTable table;
  table.header(bench::table_header(true, false));

  const auto sb0 = bench::run_week(jobs, "SB0", 0.30, 0.90);
  const auto sb1 = bench::run_week(jobs, "SB1", 0.30, 0.90);
  const auto sb2 = bench::run_week(jobs, "SB2", 0.30, 0.90);
  const auto sb2a = bench::run_week(jobs, "SB2", 0.40, 0.90);
  const auto bf = bench::run_week(jobs, "BF", 0.30, 0.90);

  table.add_row(bench::report_row("SB0", sb0.report, true));
  table.add_row(bench::report_row("SB1", sb1.report, true));
  table.add_row(bench::report_row("SB2", sb2.report, true));
  table.add_row(bench::report_row("SB2", sb2a.report, true));
  std::printf("%s\n", table.render().c_str());
  std::printf("(reference: BF@30-90 = %.1f kWh)\n\n", bf.report.energy_kwh);

  const double cut_vs_bf =
      100.0 * (1.0 - sb2a.report.energy_kwh / bf.report.energy_kwh);
  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"SB2 satisfaction >= SB1 satisfaction (concurrency awareness pays)",
       sb2.report.satisfaction >= sb1.report.satisfaction - 0.1},
      {"SB2 delay <= SB1 delay",
       sb2.report.delay_pct <= sb1.report.delay_pct + 0.5},
      {"SB2@40-90 uses less power than SB2@30-90",
       sb2a.report.energy_kwh < sb2.report.energy_kwh},
      {"SB2@40-90 cuts >= 8 % power vs BF (paper: >12 %)", cut_vs_bf >= 8.0},
      {"SB2@40-90 keeps satisfaction comparable to SB0 (within 2 %)",
       sb2a.report.satisfaction >= sb0.report.satisfaction - 2.0},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  std::printf("measured power cut of SB2@40-90 vs BF@30-90: %.1f %%\n",
              cut_vs_bf);
  return all ? 0 : 1;
}
