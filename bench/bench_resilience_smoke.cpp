// Resilience control-plane overhead check: the controller must be free
// when it has nothing to do.
//
// Two configurations of the same run are timed, interleaved within each
// repeat so machine-wide drift (thermal throttling, background load)
// biases both equally:
//   baseline — no ResilienceController attached (recorder.resilience ==
//              null, every hook is one pointer test)
//   idle     — controller attached and enabled, but with every mechanism
//              neutralised: unlimited solver budget (watchdog off),
//              unbounded queue (admission off), breaker threshold 0
//              (breakers off). The per-round bookkeeping still runs.
//
// `--smoke` (the `bench_resilience_smoke` ctest entry) exits non-zero
// unless (a) the idle run is behaviourally identical to the baseline —
// same event count, bit-identical energy/migrations, nothing shed — and
// (b) the median of the per-repeat paired deltas (idle minus its adjacent
// baseline, which cancels slow drift a min-vs-min comparison cannot)
// stays within 2 % of the median baseline time plus a small absolute
// slack for timer jitter on loaded CI machines.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "resilience/resilience.hpp"
#include "support/cli.hpp"

namespace {

using namespace easched;

workload::Workload overhead_workload() {
  workload::SyntheticConfig c;
  c.seed = bench::kSeed;
  c.span_seconds = 7.0 * sim::kDay;
  c.mean_jobs_per_hour = 25;
  return workload::generate(c);
}

experiments::RunConfig overhead_config(bool idle_controller) {
  experiments::RunConfig config;
  config.datacenter.hosts = experiments::evaluation_hosts(8, 20, 12);
  config.datacenter.seed = bench::kSeed;
  config.policy = "SB";
  config.horizon_s = 90 * sim::kDay;
  if (idle_controller) {
    resilience::ResilienceConfig c;
    c.enabled = true;
    c.solver_budget_moves = 0;  // watchdog off: ladder pinned at kFull
    c.max_pending = 0;          // admission control off
    c.breaker_threshold = 0;    // breakers off
    config.resilience = c;
  }
  return config;
}

struct Timed {
  std::vector<double> ms;  ///< one wall-clock sample per repeat
  experiments::RunResult result;
};

void time_once(Timed& out, const workload::Workload& jobs,
               bool idle_controller) {
  const auto begin = std::chrono::steady_clock::now();
  auto result =
      experiments::run_experiment(jobs, overhead_config(idle_controller));
  const auto end = std::chrono::steady_clock::now();
  out.ms.push_back(
      std::chrono::duration<double, std::milli>(end - begin).count());
  out.result = std::move(result);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 == 1 ? v[n / 2]
                                  : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

}  // namespace

int main(int argc, char** argv) {
  support::CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const int repeats = static_cast<int>(args.get_int("repeats", 7));
  args.warn_unrecognized();

  const auto jobs = overhead_workload();
  std::printf(
      "resilience overhead: %zu jobs, median of %d interleaved runs each\n",
      jobs.size(), repeats);

  {
    // Untimed warm-up: the first run pays allocator/page-cache costs that
    // would otherwise be billed to whichever configuration goes first.
    Timed warmup;
    time_once(warmup, jobs, false);
  }

  Timed baseline, idle;
  for (int i = 0; i < repeats; ++i) {
    time_once(baseline, jobs, false);
    time_once(idle, jobs, true);
  }

  // Paired deltas against the baseline run of the same repeat.
  std::vector<double> idle_delta;
  for (int i = 0; i < repeats; ++i) {
    idle_delta.push_back(idle.ms[i] - baseline.ms[i]);
  }
  const double base_ms = median(baseline.ms);
  const double idle_ms = median(idle_delta);

  std::printf("  baseline  %8.1f ms\n", base_ms);
  std::printf("  idle      %+8.1f ms  (%+.2f%%)\n", idle_ms,
              100.0 * idle_ms / base_ms);

  if (!smoke) return 0;

  int bad = 0;
  const auto require = [&bad](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      bad = 1;
    }
  };
  require(idle.result.events_dispatched == baseline.result.events_dispatched &&
              idle.result.report.energy_kwh ==
                  baseline.result.report.energy_kwh &&
              idle.result.report.migrations ==
                  baseline.result.report.migrations,
          "idle-controller run is bit-identical to the baseline");
  require(idle.result.jobs_shed == 0 && idle.result.report.jobs_deferred == 0,
          "idle controller shed or deferred nothing");
  require(idle.result.report.solver_breaches == 0 &&
              idle.result.report.max_ladder_level == 0,
          "idle controller never walked the ladder");
  // <= 2 % relative, with 5 ms of absolute slack against timer jitter.
  require(idle_ms <= base_ms * 0.02 + 5.0,
          "idle-controller overhead within 2% of baseline");
  if (bad == 0) std::printf("SMOKE OK\n");
  return bad;
}
