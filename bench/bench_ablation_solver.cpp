// Ablation A9: solution quality and cost of Algorithm 1 vs exhaustive
// search (section III-B: hill climbing "finds a suboptimal solution much
// faster and cheaper than evaluating all possible configurations").
//
// On small instances (where exhaustive search is feasible) we measure how
// far the greedy plan lands from the true optimum and how many plans the
// exhaustive search had to score; on the evaluation-scale instance we
// report the greedy solver's wall time per round.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/annealing.hpp"
#include "core/exhaustive.hpp"
#include "core/hill_climb.hpp"
#include "core/score_matrix.hpp"

namespace {

using namespace easched;

double plan_cost(const core::ScoreModel& m) {
  double sum = 0;
  for (int c = 0; c < m.cols(); ++c) sum += m.cell(m.plan_row(c), c);
  return sum;
}

struct Instance {
  sim::Simulator simulator;
  metrics::Recorder recorder;
  datacenter::Datacenter dc;
  std::vector<datacenter::VmId> queue;

  Instance(std::size_t hosts, int running, int queued, std::uint64_t seed)
      : recorder(hosts),
        dc(simulator,
           [&] {
             datacenter::DatacenterConfig config;
             config.hosts.assign(hosts, datacenter::HostSpec::medium());
             config.seed = seed;
             return config;
           }(),
           recorder) {
    support::Rng rng{seed * 31 + 7};
    for (int i = 0; i < running; ++i) {
      workload::Job job;
      job.submit = 0;
      job.dedicated_seconds = 30000;
      job.cpu_pct = 100.0 * static_cast<double>(rng.uniform_int(1, 2));
      job.mem_mb = rng.uniform(128, 800);
      const auto v = dc.admit_job(job);
      dc.place(v, static_cast<datacenter::HostId>(
                      rng.uniform_int(0, hosts - 1)));
    }
    simulator.run_until(300.0);
    for (int i = 0; i < queued; ++i) {
      workload::Job job;
      job.submit = simulator.now();
      job.dedicated_seconds = 3600;
      job.cpu_pct = 100;
      job.mem_mb = rng.uniform(128, 800);
      queue.push_back(dc.admit_job(job));
    }
  }
};

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Ablation - Algorithm 1 vs exhaustive search",
      "the greedy matrix optimization lands at or near the optimum while "
      "scoring a vanishing fraction of the configuration space");

  core::ScoreParams params;
  support::TextTable table;
  table.header({"instance", "plans scored (opt)", "greedy cost", "SA cost",
                "opt cost", "gap (%)"});

  int optimal = 0, total = 0;
  double worst_gap = 0, gap_sum = 0, sa_gap_sum = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance inst(4, 4, 3, seed);

    core::ScoreModel greedy(inst.dc, inst.queue, params, true);
    core::HillClimbLimits limits;
    limits.min_migration_gain = 1e-9;
    limits.max_migration_moves = 1000;
    core::hill_climb(greedy, limits);
    const double greedy_cost = plan_cost(greedy);

    core::ScoreModel sa_model(inst.dc, inst.queue, params, true);
    core::AnnealingParams sa_params;
    sa_params.seed = seed;
    const auto sa = core::anneal(sa_model, sa_params);

    core::ScoreModel reference(inst.dc, inst.queue, params, true);
    const auto opt = core::exhaustive_search(reference);

    const double denom = std::max(std::abs(opt.best_cost), 1.0);
    const double gap = 100.0 * (greedy_cost - opt.best_cost) / denom;
    worst_gap = std::max(worst_gap, gap);
    gap_sum += gap;
    sa_gap_sum += 100.0 * (sa.best_cost - opt.best_cost) / denom;
    if (gap < 1e-4) ++optimal;
    ++total;
    char label[32];
    std::snprintf(label, sizeof label, "4h/7vm #%llu",
                  static_cast<unsigned long long>(seed));
    table.add_row({label, std::to_string(opt.evaluated),
                   support::TextTable::num(greedy_cost, 1),
                   support::TextTable::num(sa.best_cost, 1),
                   support::TextTable::num(opt.best_cost, 1),
                   support::TextTable::num(gap, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Evaluation-scale greedy timing (exhaustive would need ~100^70 plans).
  Instance big(100, 60, 8, 42);
  const auto start = std::chrono::steady_clock::now();
  int rounds = 0;
  for (; rounds < 50; ++rounds) {
    core::ScoreModel model(big.dc, big.queue, params, true);
    core::hill_climb(model, core::HillClimbLimits{});
  }
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count() /
                       rounds;
  std::printf("evaluation-scale greedy round (100 hosts, 68 VMs): %.2f ms\n\n",
              elapsed);

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"greedy finds the exact optimum on most small instances",
       optimal * 3 >= total * 2},
      {"mean optimality gap below 10 % (local optima exist but are rare)",
       gap_sum / total < 10.0},
      {"simulated annealing (section II alternative) lands closer to the "
       "optimum on average than greedy",
       sa_gap_sum <= gap_sum + 1e-9},
      {"evaluation-scale round costs few milliseconds", elapsed < 50.0},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
