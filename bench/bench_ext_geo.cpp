// Extension A7: multi-datacenter dispatch (section II outlook, Le et al.
// [20]: distribute load across locations "according to its power
// consumption and its source"; the paper: "Our framework can be applied to
// this model in order to give it a more detailed and precise vision").
//
// Three sites in different timezones (EU / US-East / Asia), each a complete
// 34-node score-based datacenter, with diurnal tariffs and carbon curves.
// Four dispatch policies route the same week of jobs; the cost- and
// carbon-aware dispatchers should beat round-robin on their respective
// objective while keeping satisfaction.
#include <cstdio>

#include "bench_common.hpp"
#include "geo/dispatcher.hpp"

namespace {

using namespace easched;

geo::GeoConfig three_sites() {
  geo::GeoConfig config;
  const struct {
    const char* name;
    double tz;
    double price;
    double carbon;
  } site_specs[] = {
      {"eu-central", 1.0, 0.14, 320},
      {"us-east", -5.0, 0.10, 420},
      {"ap-east", 8.0, 0.12, 520},
  };
  for (const auto& s : site_specs) {
    geo::SiteConfig site;
    site.name = s.name;
    site.datacenter.hosts = experiments::evaluation_hosts(5, 17, 12);
    site.datacenter.seed = bench::kSeed;
    site.policy = "SB";
    site.energy.timezone_offset_h = s.tz;
    site.energy.base_price_eur_kwh = s.price;
    site.energy.base_carbon_g_kwh = s.carbon;
    config.sites.push_back(std::move(site));
  }
  config.horizon_s = 60 * sim::kDay;
  return config;
}

}  // namespace

int main() {
  using namespace easched;
  bench::print_banner(
      "Extension - multi-datacenter dispatch (cost / carbon aware)",
      "routing by tariff cuts energy cost, routing by carbon intensity "
      "cuts emissions, both vs blind round-robin at equal satisfaction");

  const auto jobs = bench::week_workload();

  support::TextTable table;
  table.header({"dispatch", "energy (kWh)", "cost (EUR)", "carbon (kg)",
                "S (%)", "site split"});

  geo::GeoResult results[4];
  const geo::DispatchPolicy policies[] = {
      geo::DispatchPolicy::kRoundRobin, geo::DispatchPolicy::kCheapestEnergy,
      geo::DispatchPolicy::kGreenest, geo::DispatchPolicy::kLeastLoaded};
  for (int i = 0; i < 4; ++i) {
    auto config = three_sites();
    config.dispatch = policies[i];
    results[i] = geo::run_geo(jobs, config);
    std::string split;
    for (const auto& site : results[i].sites) {
      if (!split.empty()) split += "/";
      split += std::to_string(site.jobs_dispatched);
    }
    table.add_row({geo::to_string(policies[i]),
                   support::TextTable::num(results[i].total_energy_kwh, 0),
                   support::TextTable::num(results[i].total_cost_eur, 2),
                   support::TextTable::num(results[i].total_carbon_kg, 1),
                   support::TextTable::num(results[i].mean_satisfaction, 1),
                   split});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& rr = results[0];
  const auto& cheap = results[1];
  const auto& green = results[2];
  const auto& balanced = results[3];

  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"cost-aware dispatch lowers energy cost vs round-robin",
       cheap.total_cost_eur < rr.total_cost_eur},
      {"carbon-aware dispatch lowers emissions vs round-robin",
       green.total_carbon_kg < rr.total_carbon_kg},
      {"all dispatchers finish the workload",
       !rr.hit_horizon && !cheap.hit_horizon && !green.hit_horizon &&
           !balanced.hit_horizon},
      {"satisfaction stays within 2 pp of round-robin for all",
       cheap.mean_satisfaction > rr.mean_satisfaction - 2.0 &&
           green.mean_satisfaction > rr.mean_satisfaction - 2.0 &&
           balanced.mean_satisfaction > rr.mean_satisfaction - 2.0},
  };
  bool all = true;
  for (const auto& c : checks) {
    std::printf("shape check: %s -> %s\n", c.what, c.ok ? "PASS" : "FAIL");
    all = all && c.ok;
  }
  return all ? 0 : 1;
}
