// Paper-fidelity regression gate: the headline metrics of the paper
// reproduction (Table I power model, Table II static policies, Table IV
// migration + the 15 % headline saving, Table V consolidation costs) are
// measured on every run and compared against golden envelopes recorded on
// a known-good main (tests/data/golden_envelopes.json).
//
// Unlike the per-table benches, which check *shape* ("SB beats DBF"), this
// gate pins *values*: a refactor that silently shifts SB@40-90 energy by
// 3 % fails here even though every shape check still passes.
//
//   bench_fidelity_gate                      compare against the golden file
//   bench_fidelity_gate --record             re-record the golden file
//   bench_fidelity_gate --envelopes=<path>   use a different golden file
//
// Tolerances live in the golden file itself (abs_tol / rel_tol per metric)
// so bands can be widened in review without rebuilding. Completeness is
// checked both ways: a metric added here must be recorded, and a recorded
// metric must still be measured.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/score_based_policy.hpp"
#include "datacenter/datacenter.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"

#ifndef EASCHED_GOLDEN_ENVELOPES
#define EASCHED_GOLDEN_ENVELOPES "tests/data/golden_envelopes.json"
#endif

namespace {

using namespace easched;

/// One gated metric. Exactly one of abs_tol / rel_tol is active (>= 0);
/// the band of a golden entry is abs_tol, or rel_tol * |value|.
struct Metric {
  std::string name;
  double value = 0;
  double abs_tol = -1;
  double rel_tol = -1;
};

/// Steady-state power of one 4-way host running the given VMs (the
/// Table I measurement, same stack as bench_table1_power_model).
double measure_watts(const std::vector<double>& vm_cpu_pct) {
  sim::Simulator simulator;
  metrics::Recorder recorder(1);
  datacenter::DatacenterConfig config;
  config.hosts = {datacenter::HostSpec::medium()};
  config.seed = 1;
  datacenter::Datacenter dc(simulator, config, recorder);
  for (double cpu : vm_cpu_pct) {
    workload::Job job;
    job.id = 0;
    job.submit = 0;
    job.dedicated_seconds = 100000;
    job.cpu_pct = cpu;
    job.mem_mb = 256;
    dc.place(dc.admit_job(job), 0);
  }
  simulator.run_until(1000);
  return recorder.watts.host_current(0);
}

/// Measures every gated metric on the current build. Week runs execute
/// concurrently under the sweep runner (deterministic per task).
std::vector<Metric> measure() {
  std::vector<Metric> m;

  struct Config1 {
    const char* key;
    std::vector<double> vm_cpu_pct;
  };
  const Config1 table1[] = {
      {"100", {100}},
      {"200", {200}},
      {"300", {300}},
      {"400", {400}},
      {"2x100", {100, 100}},
      {"100+200", {100, 200}},
      {"4x100", {100, 100, 100, 100}},
      {"idle", {0.01, 0.01, 0.01, 0.01}},
  };
  for (const auto& c : table1) {
    m.push_back({std::string("table1.") + c.key + ".watts",
                 measure_watts(c.vm_cpu_pct), 0.5, -1});
  }

  const auto jobs = bench::week_workload();
  experiments::SweepRunner sweep;
  std::vector<experiments::SweepTask> tasks;
  tasks.push_back(bench::week_task(jobs, "RD"));
  tasks.push_back(bench::week_task(jobs, "RR"));
  tasks.push_back(bench::week_task(jobs, "BF"));
  tasks.push_back(bench::week_task(jobs, "SB0"));
  tasks.push_back(bench::week_task(jobs, "SB", 0.30, 0.90));
  tasks.push_back(bench::week_task(jobs, "SB", 0.40, 0.90));
  tasks.push_back({&jobs, [] {
                     auto config = bench::week_run_config("SB", 0.30, 0.90);
                     auto sb = core::ScoreBasedConfig::sb();
                     sb.params.c_empty = 0;
                     sb.params.c_fill = 40;
                     config.policy_instance =
                         std::make_unique<core::ScoreBasedPolicy>(sb);
                     return config;
                   }});
  const auto results = sweep.run(std::move(tasks));
  const auto& rd = results[0].report;
  const auto& rr = results[1].report;
  const auto& bf = results[2].report;
  const auto& sb0 = results[3].report;
  const auto& sb = results[4].report;
  const auto& sba = results[5].report;
  const auto& ce0 = results[6].report;

  m.push_back({"table2.RD.energy_kwh", rd.energy_kwh, -1, 0.02});
  m.push_back({"table2.RR.energy_kwh", rr.energy_kwh, -1, 0.02});
  m.push_back({"table2.BF.energy_kwh", bf.energy_kwh, -1, 0.02});
  m.push_back({"table2.SB0.energy_kwh", sb0.energy_kwh, -1, 0.02});
  m.push_back({"table2.BF.satisfaction_pct", bf.satisfaction, 1.0, -1});
  m.push_back({"table4.SB_30_90.energy_kwh", sb.energy_kwh, -1, 0.02});
  m.push_back({"table4.SB_30_90.satisfaction_pct", sb.satisfaction, 1.0, -1});
  m.push_back({"table4.SB_40_90.energy_kwh", sba.energy_kwh, -1, 0.02});
  // The headline claim (paper: -15 % vs BF). A drift here means the
  // reproduction no longer supports the abstract's number.
  m.push_back({"table4.sb4090_vs_bf_saving_pct",
               100.0 * (1.0 - sba.energy_kwh / bf.energy_kwh), 2.0, -1});
  m.push_back({"table5.ce0.migrations",
               static_cast<double>(ce0.migrations), 5.0, -1});
  m.push_back({"table5.ce0.energy_kwh", ce0.energy_kwh, -1, 0.02});
  return m;
}

// ---- golden-envelope file ------------------------------------------------
// {"metrics": [{"name": "...", "value": X, "abs_tol": Y}, ...]} — written
// and parsed here; the parser only needs to understand what the writer
// emits (one object per metric, numeric fields after their quoted key).

void write_envelopes(const std::string& path, const std::vector<Metric>& m) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < m.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof value, "%.10g", m[i].value);
    out << "    {\"name\": \"" << m[i].name << "\", \"value\": " << value;
    if (m[i].abs_tol >= 0) out << ", \"abs_tol\": " << m[i].abs_tol;
    if (m[i].rel_tol >= 0) out << ", \"rel_tol\": " << m[i].rel_tol;
    out << "}" << (i + 1 < m.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// First numeric value after `"key":` inside [from, to), or fallback.
double find_num(const std::string& s, std::size_t from, std::size_t to,
                const char* key, double fallback) {
  const std::string quoted = std::string("\"") + key + "\"";
  const auto p = s.find(quoted, from);
  if (p == std::string::npos || p >= to) return fallback;
  const auto colon = s.find(':', p + quoted.size());
  if (colon == std::string::npos || colon >= to) return fallback;
  return std::strtod(s.c_str() + colon + 1, nullptr);
}

std::vector<Metric> read_envelopes(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "cannot read golden envelopes %s — record them first with "
                 "bench_fidelity_gate --record\n",
                 path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<Metric> out;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    const auto open = text.find('"', text.find(':', pos) + 1);
    const auto close = text.find('"', open + 1);
    auto end = text.find('}', pos);
    if (open == std::string::npos || close == std::string::npos ||
        end == std::string::npos) {
      std::fprintf(stderr, "malformed golden envelope file %s\n",
                   path.c_str());
      std::exit(1);
    }
    Metric m;
    m.name = text.substr(open + 1, close - open - 1);
    m.value = find_num(text, close, end, "value", 0);
    m.abs_tol = find_num(text, close, end, "abs_tol", -1);
    m.rel_tol = find_num(text, close, end, "rel_tol", -1);
    out.push_back(std::move(m));
    pos = end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  support::CliArgs args(argc, argv);
  const bool record = args.get_bool("record", false);
  const std::string path = args.get("envelopes", EASCHED_GOLDEN_ENVELOPES);
  args.warn_unrecognized();

  bench::print_banner(
      "Paper-fidelity regression gate",
      "Table I/II/IV/V headline metrics must stay inside the golden "
      "envelopes recorded on a known-good main");

  const auto measured = measure();
  if (record) {
    write_envelopes(path, measured);
    std::printf("recorded %zu golden envelopes to %s\n", measured.size(),
                path.c_str());
    return 0;
  }

  const auto golden = read_envelopes(path);
  support::TextTable table;
  table.header({"metric", "golden", "measured", "band", "status"});
  bool all = true;
  for (const auto& g : golden) {
    const Metric* meas = nullptr;
    for (const auto& c : measured) {
      if (c.name == g.name) meas = &c;
    }
    if (meas == nullptr) {
      std::printf("FAIL: golden metric \"%s\" is no longer measured — "
                  "re-record or restore it\n",
                  g.name.c_str());
      all = false;
      continue;
    }
    const double band =
        g.abs_tol >= 0 ? g.abs_tol : g.rel_tol * std::abs(g.value);
    const bool ok = std::abs(meas->value - g.value) <= band;
    all = all && ok;
    table.add_row({g.name, support::TextTable::num(g.value, 2),
                   support::TextTable::num(meas->value, 2),
                   "+/- " + support::TextTable::num(band, 2),
                   ok ? "PASS" : "FAIL"});
  }
  for (const auto& c : measured) {
    bool known = false;
    for (const auto& g : golden) {
      if (g.name == c.name) known = true;
    }
    if (!known) {
      std::printf("FAIL: measured metric \"%s\" has no golden envelope — "
                  "run --record\n",
                  c.name.c_str());
      all = false;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("fidelity gate: %s (%zu envelopes, %s)\n",
              all ? "PASS" : "FAIL", golden.size(), path.c_str());
  return all ? 0 : 1;
}
